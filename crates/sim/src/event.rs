//! Event queue.
//!
//! A discrete-event simulation advances by repeatedly popping the earliest
//! pending event. [`EventQueue`] wraps a binary heap of [`ScheduledEvent`]s
//! keyed by `(time, sequence)` — the monotonically increasing sequence number
//! makes same-instant events pop in FIFO scheduling order, which is what
//! keeps runs deterministic regardless of heap internals.
//!
//! Events also support *cancellation by token*: callers keep the
//! [`EventToken`] returned by [`EventQueue::schedule`] and may cancel it
//! (e.g. a retransmission timer disarmed by an ACK).
//!
//! # Cancellation without the hot-path probe
//!
//! Cancellation is generation-stamped: every scheduled event carries a
//! `(slot, generation)` pair into the heap, and a side table records each
//! slot's current generation. Cancelling (or firing) an event bumps its
//! slot's generation, so liveness is a single indexed compare — no hash-set
//! probe on the pop path, which the sweep executor multiplies across every
//! parallel run. Slots are freelisted and reused, so the table stays sized
//! to the maximum number of *outstanding* events, not the run length.
//!
//! Cancelled events that sink below the heap head are popped lazily, but
//! the head itself is pruned eagerly (on `cancel` and after each `pop`), so
//! the queue upholds the invariant *the heap head is never cancelled*. That
//! is what lets [`EventQueue::peek_time`] take `&self`, and it keeps
//! [`EventQueue::len`] exact: a token cancelled after its event fired is a
//! generation mismatch and a no-op, never a phantom entry.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, for cancellation. Carries
/// the event's slot index and the slot generation at scheduling time; the
/// token is *dead* (cancel is a no-op) once the event fires or is
/// cancelled, because either bumps the slot generation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventToken {
    slot: u32,
    generation: u64,
}

impl EventToken {
    /// A token that never matches a real event.
    pub const NONE: EventToken = EventToken {
        slot: u32::MAX,
        generation: u64::MAX,
    };
}

/// An event with its scheduled time and FIFO tie-break sequence.
#[derive(Debug)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    seq: u64,
    slot: u32,
    generation: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic priority queue of simulation events.
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
    /// Current generation of each slot. An event in the heap is live iff
    /// its stamped generation equals its slot's entry here.
    generations: Vec<u64>,
    /// Slots whose event has fired or been cancelled, available for reuse.
    free_slots: Vec<u32>,
    /// Cancelled events still physically in the heap (below the head).
    /// `len()` subtracts this, so the count is exact at all times.
    cancelled_in_heap: usize,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            generations: Vec::new(),
            free_slots: Vec::new(),
            cancelled_in_heap: 0,
            popped: 0,
        }
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (monotonically non-decreasing).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events. Exact: cancelling an
    /// already-fired token is a generation mismatch and changes nothing.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled_in_heap
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events popped so far (for engine benchmarking).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; debug builds assert, release
    /// builds clamp to `now` so the simulation still makes progress.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventToken {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                self.generations.push(0);
                (self.generations.len() - 1) as u32
            }
        };
        let generation = self.generations[slot as usize];
        self.heap.push(ScheduledEvent {
            time: at,
            seq,
            slot,
            generation,
            event,
        });
        EventToken { slot, generation }
    }

    /// Schedule `event` after a delay relative to `now`.
    pub fn schedule_after(&mut self, delay: crate::Duration, event: E) -> EventToken {
        self.schedule(self.now + delay, event)
    }

    /// Cancel a previously scheduled event. Safe to call with a token that
    /// has already fired or been cancelled (generation mismatch, no effect)
    /// or with [`EventToken::NONE`].
    pub fn cancel(&mut self, token: EventToken) {
        let s = token.slot as usize;
        if s >= self.generations.len() || self.generations[s] != token.generation {
            return; // NONE, already fired, or already cancelled
        }
        // Bump the generation so the heap entry reads as dead, and free the
        // slot immediately: a reusing event gets the bumped generation, so
        // the stale heap entry can never be mistaken for it.
        self.generations[s] = self.generations[s].wrapping_add(1);
        self.free_slots.push(token.slot);
        self.cancelled_in_heap += 1;
        self.prune_cancelled_head();
    }

    /// True iff the event stamped `(slot, generation)` has neither fired
    /// nor been cancelled.
    #[inline]
    fn is_live(&self, slot: u32, generation: u64) -> bool {
        self.generations[slot as usize] == generation
    }

    /// Restore the invariant that the heap head is live, dropping any
    /// cancelled events that surfaced. Amortized O(1): each cancelled
    /// event is popped exactly once.
    fn prune_cancelled_head(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.is_live(head.slot, head.generation) {
                break;
            }
            self.heap.pop();
            self.cancelled_in_heap -= 1;
        }
    }

    /// Pop the earliest pending event, advancing `now` to its timestamp.
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // The head-liveness invariant means the first pop is the answer;
        // the loop is defense in depth (and self-healing in release).
        while let Some(ev) = self.heap.pop() {
            if !self.is_live(ev.slot, ev.generation) {
                debug_assert!(false, "cancelled event at heap head");
                self.cancelled_in_heap -= 1;
                continue;
            }
            debug_assert!(ev.time >= self.now, "time went backwards");
            // Retire the slot: kill the token (late cancels become
            // mismatches) and recycle it.
            self.generations[ev.slot as usize] = self.generations[ev.slot as usize].wrapping_add(1);
            self.free_slots.push(ev.slot);
            self.now = ev.time;
            self.popped += 1;
            self.prune_cancelled_head();
            return Some((ev.time, ev.event));
        }
        None
    }

    /// Timestamp of the next pending event without popping it. `&self`:
    /// the head is never cancelled (pruned eagerly on `cancel`/`pop`), so
    /// no draining is needed to answer accurately.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|head| {
            debug_assert!(self.is_live(head.slot, head.generation));
            head.time
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.schedule(SimTime::from_nanos(10), ());
        q.schedule(SimTime::from_nanos(40), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
        assert_eq!(last, SimTime::from_nanos(40));
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let _a = q.schedule(SimTime::from_nanos(1), "keep1");
        let b = q.schedule(SimTime::from_nanos(2), "drop");
        let _c = q.schedule(SimTime::from_nanos(3), "keep2");
        q.cancel(b);
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["keep1", "keep2"]);
    }

    #[test]
    fn cancel_fired_token_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1u32);
        assert!(q.pop().is_some());
        q.cancel(a); // already fired
        q.schedule(SimTime::from_nanos(2), 2u32);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn cancel_fired_token_keeps_len_exact() {
        // The old HashSet design overcounted here: a token cancelled after
        // its event fired sat in the cancelled set forever.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), ());
        q.schedule(SimTime::from_nanos(2), ());
        assert!(q.pop().is_some());
        q.cancel(a); // fired; must not disturb the count
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert!(q.pop().is_some());
        assert!(q.is_empty());
        q.cancel(a); // double-cancel of a dead token: still a no-op
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn cancel_none_is_noop() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.cancel(EventToken::NONE);
        q.schedule(SimTime::from_nanos(1), 7);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn slot_reuse_does_not_resurrect_cancelled_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(5), "old");
        q.cancel(a);
        // Reuses the slot a freed; its generation was bumped, so the new
        // token must be distinct and the old event must stay dead.
        let b = q.schedule(SimTime::from_nanos(1), "new");
        assert_ne!(a, b);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("new"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn schedule_after_uses_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), "base");
        q.pop();
        q.schedule_after(Duration::from_nanos(50), "later");
        assert_eq!(q.pop().map(|(t, _)| t), Some(SimTime::from_nanos(150)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), ());
        q.schedule(SimTime::from_nanos(2), ());
        q.cancel(a);
        // peek_time is &self now: the cancelled head was pruned eagerly.
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
    }

    #[test]
    fn peek_time_sees_buried_cancellation() {
        // Cancel an event that is NOT the head; it surfaces only after the
        // head pops, and the post-pop prune must keep peek_time accurate.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), "head");
        let buried = q.schedule(SimTime::from_nanos(2), "buried");
        q.schedule(SimTime::from_nanos(3), "tail");
        q.cancel(buried);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("head"));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        let t = q.schedule(SimTime::from_nanos(1), ());
        assert_eq!(q.len(), 1);
        q.cancel(t);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn late_cancel_after_reuse_cannot_kill_the_new_event() {
        // The nasty ordering: an event fires, its slot is reused by a new
        // event, and only then does the stale token's cancel arrive. The
        // fired pop bumped the generation, so the late cancel must miss
        // the reused slot and len() must stay exact.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        assert!(q.pop().is_some());
        let b = q.schedule(SimTime::from_nanos(2), "b");
        assert_eq!(b.slot, a.slot, "test premise: b reuses a's slot");
        q.cancel(a);
        assert_eq!(q.len(), 1, "late cancel must not touch the reused slot");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.is_empty());
    }

    #[test]
    fn generation_stamps_survive_slot_reuse_near_u64_boundary() {
        // Generations bump with wrapping_add, so the interesting edge is
        // the wrap itself: tokens stamped MAX-1 and MAX must die on
        // fire/cancel, and the post-wrap stamp (0) must not resurrect
        // them. Reaching u64::MAX takes 2^64 reuses organically; pin the
        // side table directly (tests share the module, fields are ours).
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "seed");
        q.cancel(a); // slot 0 freed
        q.generations[0] = u64::MAX - 1;
        let b = q.schedule(SimTime::from_nanos(2), "near-max");
        assert_eq!(b.generation, u64::MAX - 1);
        q.cancel(b); // bumps to u64::MAX
        assert!(q.is_empty());
        let c = q.schedule(SimTime::from_nanos(3), "at-max");
        assert_eq!(c.generation, u64::MAX);
        q.cancel(b); // stale token from the previous generation: no-op
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("at-max"));
        // c fired across the wrap (MAX -> 0); its token is dead and the
        // recycled slot stamps the wrapped generation on the next event.
        let d = q.schedule(SimTime::from_nanos(4), "wrapped");
        assert_eq!(d.generation, 0);
        assert_ne!(c, d);
        q.cancel(c); // dead pre-wrap token: no-op on the live event
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("wrapped"));
        assert!(q.is_empty());
    }

    #[test]
    fn heavy_cancel_churn_stays_consistent() {
        // Timer-like workload: schedule, cancel half, fire the rest, reuse
        // slots continuously. len() must track exactly throughout.
        let mut q = EventQueue::new();
        let mut live = 0usize;
        let mut tokens = Vec::new();
        for round in 0u64..50 {
            for i in 0..20 {
                let tok = q.schedule(SimTime::from_nanos(round * 100 + i + 1), (round, i));
                tokens.push(tok);
                live += 1;
            }
            // Cancel every other token from this round.
            for tok in tokens.drain(..).step_by(2) {
                q.cancel(tok);
                live -= 1;
            }
            assert_eq!(q.len(), live);
            // Fire half of what remains.
            for _ in 0..5 {
                if q.pop().is_some() {
                    live -= 1;
                }
            }
            assert_eq!(q.len(), live);
        }
        while q.pop().is_some() {
            live -= 1;
        }
        assert_eq!(live, 0);
        assert!(q.is_empty());
    }
}
