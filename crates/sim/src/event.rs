//! Event queue.
//!
//! A discrete-event simulation advances by repeatedly popping the earliest
//! pending event. [`EventQueue`] wraps a binary heap of [`ScheduledEvent`]s
//! keyed by `(time, sequence)` — the monotonically increasing sequence number
//! makes same-instant events pop in FIFO scheduling order, which is what
//! keeps runs deterministic regardless of heap internals.
//!
//! Events also support *cancellation by token*: callers keep the
//! [`EventToken`] returned by [`EventQueue::schedule`] and may lazily cancel
//! it (e.g. a retransmission timer disarmed by an ACK). Cancelled events are
//! skipped on pop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventToken(u64);

impl EventToken {
    /// A token that never matches a real event.
    pub const NONE: EventToken = EventToken(u64::MAX);
}

/// An event with its scheduled time and FIFO tie-break sequence.
#[derive(Debug)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    seq: u64,
    cancelled: bool,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic priority queue of simulation events.
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
    /// Tokens cancelled before their event popped. Kept sorted-small via
    /// retain-on-pop; in practice this set stays tiny because timers are
    /// cancelled close to their firing time.
    cancelled: std::collections::HashSet<u64>,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            cancelled: std::collections::HashSet::new(),
            popped: 0,
        }
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (monotonically non-decreasing).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events. Saturating: a token
    /// cancelled after its event already fired sits in the cancelled set
    /// until swept, briefly overcounting it.
    pub fn len(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events popped so far (for engine benchmarking).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; debug builds assert, release
    /// builds clamp to `now` so the simulation still makes progress.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventToken {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time: at,
            seq,
            cancelled: false,
            event,
        });
        EventToken(seq)
    }

    /// Schedule `event` after a delay relative to `now`.
    pub fn schedule_after(&mut self, delay: crate::Duration, event: E) -> EventToken {
        self.schedule(self.now + delay, event)
    }

    /// Lazily cancel a previously scheduled event. Safe to call with a token
    /// that has already fired (no effect) or [`EventToken::NONE`].
    pub fn cancel(&mut self, token: EventToken) {
        if token != EventToken::NONE && token.0 < self.next_seq {
            self.cancelled.insert(token.0);
        }
    }

    /// Pop the earliest pending event, advancing `now` to its timestamp.
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(ev) = self.heap.pop() {
            if ev.cancelled || self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.popped += 1;
            return Some((ev.time, ev.event));
        }
        None
    }

    /// Peek at the timestamp of the next pending event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain cancelled heads first so the answer is accurate.
        while let Some(head) = self.heap.peek() {
            if head.cancelled || self.cancelled.contains(&head.seq) {
                let ev = self.heap.pop().expect("peeked");
                self.cancelled.remove(&ev.seq);
            } else {
                return Some(head.time);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.schedule(SimTime::from_nanos(10), ());
        q.schedule(SimTime::from_nanos(40), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
        assert_eq!(last, SimTime::from_nanos(40));
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let _a = q.schedule(SimTime::from_nanos(1), "keep1");
        let b = q.schedule(SimTime::from_nanos(2), "drop");
        let _c = q.schedule(SimTime::from_nanos(3), "keep2");
        q.cancel(b);
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["keep1", "keep2"]);
    }

    #[test]
    fn cancel_fired_token_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1u32);
        assert!(q.pop().is_some());
        q.cancel(a); // already fired
        q.schedule(SimTime::from_nanos(2), 2u32);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn cancel_none_is_noop() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.cancel(EventToken::NONE);
        q.schedule(SimTime::from_nanos(1), 7);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn schedule_after_uses_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), "base");
        q.pop();
        q.schedule_after(Duration::from_nanos(50), "later");
        assert_eq!(q.pop().map(|(t, _)| t), Some(SimTime::from_nanos(150)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), ());
        q.schedule(SimTime::from_nanos(2), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
    }

    #[test]
    fn empty_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        let t = q.schedule(SimTime::from_nanos(1), ());
        assert_eq!(q.len(), 1);
        q.cancel(t);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
