//! # hns-sim — deterministic discrete-event simulation engine
//!
//! This crate is the substrate every other `hostnet` crate is built on. It
//! provides:
//!
//! * [`SimTime`] / [`Duration`] — nanosecond-resolution simulated time with
//!   convenience constructors and Gbps/cycles arithmetic helpers,
//! * [`EventQueue`] — a priority queue of timestamped events with
//!   deterministic FIFO tie-breaking for events scheduled at the same
//!   instant, backed by a hierarchical timer wheel with batched same-tick
//!   dispatch ([`HeapEventQueue`] keeps the old binary heap around as the
//!   differential-testing oracle and benchmark baseline),
//! * [`SimRng`] — a small, fast, seedable PRNG (SplitMix64 seeded
//!   xoshiro256++) so simulations are bit-reproducible across platforms,
//! * [`stats`] — streaming counters, mean/variance accumulators, and
//!   fixed-resolution histograms used to build the paper's figures.
//!
//! Each *run* of the engine is intentionally single-threaded: the paper's
//! experiments are about *modeled* CPU parallelism (simulated cores), not
//! host parallelism, and single-threaded execution keeps every run exactly
//! reproducible. Host parallelism lives one level up — `hns-par` executes
//! independent runs of a figure sweep concurrently, which preserves that
//! reproducibility because no engine state is shared between runs.

pub mod event;
pub mod rng;
pub mod stats;
pub mod time;
mod wheel;

pub use event::{EventQueue, HeapEventQueue, PendingFire, ScheduledEvent};
pub use rng::SimRng;
pub use stats::{Counter, Histogram, MeanVar, Percentiles};
pub use time::{Duration, SimTime};

/// Frequency of the simulated CPU cores, in cycles per second.
///
/// The paper's testbed uses Intel Xeon Gold 6128 CPUs at 3.4GHz; all cycle
/// budgets in the cost model assume this clock.
pub const CPU_HZ: u64 = 3_400_000_000;

/// Convert a number of CPU cycles into simulated time at [`CPU_HZ`].
#[inline]
pub fn cycles_to_time(cycles: u64) -> Duration {
    // ns = cycles * 1e9 / hz. Use u128 to avoid overflow for large batches.
    Duration::from_nanos(((cycles as u128 * 1_000_000_000u128) / CPU_HZ as u128) as u64)
}

/// Convert a simulated duration into CPU cycles at [`CPU_HZ`].
#[inline]
pub fn time_to_cycles(d: Duration) -> u64 {
    ((d.as_nanos() as u128 * CPU_HZ as u128) / 1_000_000_000u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_time_round_trip() {
        for cycles in [0u64, 1, 340, 3_400, 1_000_000, 3_400_000_000] {
            let t = cycles_to_time(cycles);
            let back = time_to_cycles(t);
            // Round trip may lose sub-cycle precision but never more than one
            // cycle per ns of rounding.
            assert!(back <= cycles && cycles - back <= 4, "{cycles} -> {back}");
        }
    }

    #[test]
    fn one_second_of_cycles() {
        assert_eq!(cycles_to_time(CPU_HZ), Duration::from_secs(1));
    }
}
