//! Streaming statistics used to build the paper's figures.
//!
//! * [`Counter`] — a monotone u64 accumulator with a windowed-reset helper so
//!   measurements can exclude warmup,
//! * [`MeanVar`] — Welford online mean/variance,
//! * [`Histogram`] — log-linear bucket histogram (HdrHistogram-style, two
//!   decimal digits of precision) supporting percentile queries; used for the
//!   NAPI→copy latency distribution (Fig. 3f) and the post-GRO skb size
//!   distribution (Fig. 8c).

/// A simple monotone counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Reset to zero (used at the end of warmup).
    #[inline]
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

/// Welford online mean and variance.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanVar {
    /// Empty accumulator.
    pub const fn new() -> Self {
        MeanVar {
            n: 0,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 if fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Reset (end of warmup).
    pub fn reset(&mut self) {
        *self = MeanVar::new();
    }
}

/// Percentile summary extracted from a [`Histogram`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Percentiles {
    /// 50th percentile (median).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Maximum recorded value.
    pub max: u64,
}

/// Log-linear histogram over `u64` values.
///
/// Values are bucketed with ~1.6% relative resolution (64 linear buckets per
/// power of two), which is plenty for latency distributions spanning ns to
/// seconds. Memory is lazily grown, so an idle histogram costs nothing.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for Histogram {
    /// Delegates to [`Histogram::new`]: a derived `Default` would zero
    /// `min`, breaking the `min == u64::MAX` empty-state invariant that
    /// [`Histogram::record`] relies on.
    fn default() -> Self {
        Histogram::new()
    }
}

const SUB_BUCKET_BITS: u32 = 6; // 64 sub-buckets per octave
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        // Values below 64 get exact unit buckets.
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as u64;
    // Octave 0 covers [64, 128), octave 1 covers [128, 256), ...
    let octave = msb - SUB_BUCKET_BITS as u64;
    let sub = (value >> octave) - SUB_BUCKETS;
    (SUB_BUCKETS + octave * SUB_BUCKETS + sub) as usize
}

#[inline]
fn bucket_lower_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let octave = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = (index - SUB_BUCKETS) % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << octave
}

impl Histogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]` (bucket lower bound, clamped to
    /// the recorded `[min, max]` range; 0 if empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The bucket floor can undershoot the smallest recorded
                // value (record one 100 → the bucket holding it starts at
                // 96), so clamp from below as well as above.
                return bucket_lower_bound(i).min(self.max).max(self.min());
            }
        }
        self.max
    }

    /// Convenience percentile summary.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max,
        }
    }

    /// Reset all state (end of warmup).
    pub fn reset(&mut self) {
        self.buckets.clear();
        self.count = 0;
        self.sum = 0;
        self.max = 0;
        self.min = u64::MAX;
    }

    /// Iterate `(bucket_lower_bound, count)` over non-empty buckets, in
    /// increasing value order. Used to print distribution figures.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower_bound(i), c))
    }

    /// Fraction of samples with value ≥ `threshold`.
    pub fn fraction_at_least(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let at_least: u64 = self
            .iter_buckets()
            .filter(|&(lb, _)| lb >= threshold)
            .map(|(_, c)| c)
            .sum();
        at_least as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn meanvar_known_values() {
        let mut mv = MeanVar::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            mv.record(x);
        }
        assert_eq!(mv.count(), 8);
        assert!((mv.mean() - 5.0).abs() < 1e-9);
        // Sample variance of that classic dataset is 32/7.
        assert!((mv.variance() - 32.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn meanvar_empty_is_zero() {
        let mv = MeanVar::new();
        assert_eq!(mv.mean(), 0.0);
        assert_eq!(mv.variance(), 0.0);
    }

    #[test]
    fn bucket_index_monotone() {
        let mut last = 0usize;
        for v in (0..100_000u64).step_by(37) {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            last = idx;
        }
    }

    #[test]
    fn bucket_bounds_contain_values() {
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 65_535, 1 << 30] {
            let idx = bucket_index(v);
            let lb = bucket_lower_bound(idx);
            assert!(lb <= v, "lb {lb} > v {v}");
            // Upper bound of the bucket is the lower bound of the next one.
            let next_lb = bucket_lower_bound(idx + 1);
            assert!(v < next_lb, "v {v} >= next lb {next_lb}");
        }
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.count(), 64);
    }

    #[test]
    fn histogram_percentiles_reasonable() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p = h.percentiles();
        // Log-linear buckets have ~1.6% resolution.
        assert!(
            (p.p50 as f64 - 5_000.0).abs() / 5_000.0 < 0.05,
            "p50={}",
            p.p50
        );
        assert!(
            (p.p99 as f64 - 9_900.0).abs() / 9_900.0 < 0.05,
            "p99={}",
            p.p99
        );
        assert_eq!(p.max, 10_000);
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert!((h.mean() - 20.0).abs() < 1e-9);
        assert_eq!(h.min(), 10);
    }

    #[test]
    fn histogram_default_keeps_empty_state_invariant() {
        // Regression: `#[derive(Default)]` zeroed `min`, so a defaulted
        // histogram reported `min() == 0` forever after the first record.
        let mut h = Histogram::default();
        h.record(100);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 100);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn quantile_never_undershoots_min() {
        // Regression: a single value of 100 lands in the [96, 100) bucket's
        // successor, whose lower bound is below 100; quantiles reported the
        // bucket floor.
        let mut h = Histogram::new();
        h.record(100);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 100, "q={q}");
        }
    }

    #[test]
    fn histogram_fraction_at_least() {
        let mut h = Histogram::new();
        for _ in 0..75 {
            h.record(10);
        }
        for _ in 0..25 {
            h.record(1 << 20);
        }
        let f = h.fraction_at_least(1 << 19);
        assert!((f - 0.25).abs() < 0.01, "f = {f}");
    }

    #[test]
    fn histogram_reset() {
        let mut h = Histogram::new();
        h.record(5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }
}
