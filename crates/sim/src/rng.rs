//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-reproducible given a seed, across platforms and
//! across versions of third-party crates. We therefore implement the PRNG
//! in-tree: xoshiro256++ (public domain, Blackman & Vigna) seeded through
//! SplitMix64. It is used for loss injection, RSS hash placement, workload
//! jitter and cache conflict sampling — nothing cryptographic.

/// A seedable xoshiro256++ PRNG.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed. Different seeds give
    /// independent streams; the all-zero internal state is impossible by
    /// construction.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child stream (e.g. one per flow) without
    /// correlating with the parent.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift; the tiny modulo bias is irrelevant for
        // simulation sampling.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_below(hi - lo)
    }

    /// Bernoulli trial with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Exponentially distributed sample with the given mean (for Poisson
    /// inter-arrivals in workload generators).
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse CDF; guard against ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
        // All residues reachable.
        let mut seen = [false; 17];
        for _ in 0..5_000 {
            seen[r.next_below(17) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // p = 0.5 should be roughly half.
        let hits = (0..10_000).filter(|_| r.chance(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn chance_small_probability() {
        let mut r = SimRng::new(11);
        let hits = (0..1_000_000).filter(|_| r.chance(1.5e-3)).count();
        // Expect ~1500; allow generous tolerance.
        assert!((1_000..2_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn exp_has_roughly_right_mean() {
        let mut r = SimRng::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((2.9..3.1).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = SimRng::new(1234);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = SimRng::new(77);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((0.49..0.51).contains(&mean), "mean = {mean}");
    }
}
