//! # hns-mem — memory-subsystem models
//!
//! The paper's central cache findings (Figs. 3e, 3f, 4, 6c, 12) hinge on the
//! interaction between NIC DMA, Intel DDIO (Direct Cache Access into a slice
//! of L3), NUMA placement, and the kernel page allocator. This crate builds
//! those substrates:
//!
//! * [`FrameArena`] — a slab of in-flight DMA frame buffers with cache
//!   residency tracking,
//! * [`DcaCache`] — the DDIO model: a limited-capacity (≈18% of L3) cache
//!   that NIC DMA writes into, with FIFO capacity eviction *and* a
//!   descriptor-pool conflict model reproducing the paper's "suboptimal
//!   cache utilization" observation,
//! * [`Topology`] — NUMA nodes/cores and memory-access classification,
//! * [`PageAllocator`] — per-core pagesets (Linux per-cpu page lists) backed
//!   by a global free list, reproducing the page-recycling dynamics of §3.2,
//! * [`Iommu`] — IO-MMU mapping bookkeeping (per-page map/unmap) for §3.9,
//! * [`SenderL3`] — statistical warmth model for sender-side send buffers
//!   (§3.4: sender cache miss rate stays low, ~11% even with 24 flows).

pub mod dca;
pub mod frame;
pub mod iommu;
pub mod numa;
pub mod pagepool;
pub mod sender_l3;

pub use dca::DcaCache;
pub use frame::{FrameArena, FrameId};
pub use iommu::Iommu;
pub use numa::{MemClass, Topology};
pub use pagepool::{AllocOutcome, PageAllocator};
pub use sender_l3::SenderL3;

/// Size of one kernel page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Pages needed to back a buffer of `bytes` (driver allocates whole pages).
#[inline]
pub fn pages_for(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
        assert_eq!(pages_for(9000), 3);
        assert_eq!(pages_for(1500), 1);
    }
}
