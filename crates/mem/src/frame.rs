//! Frame arena: the set of DMA buffers currently holding received data.
//!
//! Every frame the NIC DMAs is registered here at reception and released
//! when the application has copied its payload and the skb is freed. The
//! arena is a generational slab: [`FrameId`]s are cheap `Copy` handles and
//! stale handles (freed and reused slots) are detected by generation
//! mismatch — important because the DCA cache holds frame references that
//! may outlive the frame.

use crate::numa::NodeId;

/// Handle to a frame buffer in a [`FrameArena`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FrameId {
    index: u32,
    generation: u32,
}

#[derive(Clone, Debug)]
struct Slot {
    generation: u32,
    live: bool,
    /// Payload bytes held by this frame.
    bytes: u32,
    /// NUMA node of the backing memory.
    node: NodeId,
    /// DMA-clock stamp from the DCA model, `None` if never DDIO-inserted.
    dca_mark: Option<u64>,
}

/// Generational slab of live DMA frames.
#[derive(Default, Debug)]
pub struct FrameArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live_count: usize,
}

impl FrameArena {
    /// Empty arena.
    pub fn new() -> Self {
        FrameArena::default()
    }

    /// Register a new frame of `bytes` backed by memory on `node`.
    /// Residency starts false; the DCA model flips it on insert.
    pub fn insert(&mut self, bytes: u32, node: NodeId) -> FrameId {
        self.live_count += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.live = true;
            slot.bytes = bytes;
            slot.node = node;
            slot.dca_mark = None;
            FrameId {
                index,
                generation: slot.generation,
            }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                live: true,
                bytes,
                node,
                dca_mark: None,
            });
            FrameId {
                index,
                generation: 0,
            }
        }
    }

    /// Release a frame (skb freed after data copy). Returns its byte count.
    /// Stale ids are a logic error.
    pub fn release(&mut self, id: FrameId) -> u64 {
        let slot = &mut self.slots[id.index as usize];
        assert!(slot.live && slot.generation == id.generation, "double free");
        slot.live = false;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index);
        self.live_count -= 1;
        slot.bytes as u64
    }

    /// True if `id` refers to a live (not yet released) frame.
    pub fn is_live(&self, id: FrameId) -> bool {
        let slot = &self.slots[id.index as usize];
        slot.live && slot.generation == id.generation
    }

    /// DMA-clock stamp of a live, DDIO-inserted frame.
    pub fn dca_mark(&self, id: FrameId) -> Option<u64> {
        let slot = &self.slots[id.index as usize];
        if slot.live && slot.generation == id.generation {
            slot.dca_mark
        } else {
            None
        }
    }

    /// Stamp a frame as DDIO-inserted at DMA-clock `mark`. Stale ids are
    /// ignored.
    pub fn set_dca_inserted(&mut self, id: FrameId, mark: u64) {
        let slot = &mut self.slots[id.index as usize];
        if slot.live && slot.generation == id.generation {
            slot.dca_mark = Some(mark);
        }
    }

    /// Payload bytes of a live frame (0 for stale ids).
    pub fn bytes(&self, id: FrameId) -> u64 {
        let slot = &self.slots[id.index as usize];
        if slot.live && slot.generation == id.generation {
            slot.bytes as u64
        } else {
            0
        }
    }

    /// NUMA node of the frame's backing memory.
    pub fn node(&self, id: FrameId) -> NodeId {
        self.slots[id.index as usize].node
    }

    /// Number of live frames (for invariant checks).
    pub fn live_count(&self) -> usize {
        self.live_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_release_cycle() {
        let mut a = FrameArena::new();
        let f = a.insert(9000, 0);
        assert!(a.is_live(f));
        assert_eq!(a.bytes(f), 9000);
        assert_eq!(a.live_count(), 1);
        assert_eq!(a.release(f), 9000);
        assert!(!a.is_live(f));
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    fn dca_mark_round_trip() {
        let mut a = FrameArena::new();
        let f = a.insert(1500, 0);
        assert_eq!(a.dca_mark(f), None);
        a.set_dca_inserted(f, 12345);
        assert_eq!(a.dca_mark(f), Some(12345));
        a.release(f);
        assert_eq!(a.dca_mark(f), None, "stale handle has no mark");
    }

    #[test]
    fn stale_handle_detected() {
        let mut a = FrameArena::new();
        let f = a.insert(100, 1);
        a.release(f);
        let g = a.insert(200, 2);
        // g reuses f's slot but with a bumped generation.
        assert_eq!(g.index, f.index);
        assert!(!a.is_live(f));
        assert!(a.is_live(g));
        assert_eq!(a.bytes(f), 0);
        assert_eq!(a.bytes(g), 200);
        // Stale mark writes are ignored.
        a.set_dca_inserted(f, 7);
        assert_eq!(a.dca_mark(g), None);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = FrameArena::new();
        let f = a.insert(100, 0);
        a.release(f);
        a.release(f);
    }

    #[test]
    fn slot_reuse_keeps_arena_small() {
        let mut a = FrameArena::new();
        for _ in 0..1000 {
            let f = a.insert(1500, 0);
            a.release(f);
        }
        assert_eq!(a.slots.len(), 1);
    }

    #[test]
    fn node_recorded() {
        let mut a = FrameArena::new();
        let f = a.insert(64, 3);
        assert_eq!(a.node(f), 3);
    }
}
