//! Kernel page allocator with per-core pagesets.
//!
//! The Linux page allocator keeps a per-CPU list of free pages (the
//! "pageset" / pcp list). Allocations served from the pageset are cheap;
//! when it runs dry the allocator must take the zone lock and pull a batch
//! from the global free list — much more expensive. Frees are likewise
//! cheap until the pageset hits its high watermark, at which point a batch
//! is drained back.
//!
//! §3.2 of the paper leans on these dynamics: at link saturation each core
//! serves less traffic, the socket queue stays shallow, pages recycle back
//! to the pageset before it empties, and memory-management overhead *drops*.
//! This model reproduces that: the number of pages "in flight" between NAPI
//! allocation and post-copy free determines how often the pcp under/overflows.

use crate::numa::{CoreId, NodeId};

/// Outcome of an allocation or free, used by the cost model to charge
/// cheap (pcp hit) vs expensive (global list) cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocOutcome {
    /// Pages served by the per-core pageset (cheap path).
    pub fast_pages: u64,
    /// Pages that required the global free list (zone lock, batch refill).
    pub slow_pages: u64,
}

impl AllocOutcome {
    /// Merge two outcomes.
    pub fn merge(&mut self, other: AllocOutcome) {
        self.fast_pages += other.fast_pages;
        self.slow_pages += other.slow_pages;
    }

    /// Total pages moved.
    pub fn total(&self) -> u64 {
        self.fast_pages + self.slow_pages
    }
}

#[derive(Clone, Copy, Debug)]
struct Pcp {
    /// Free pages currently cached on this core.
    free: u64,
    /// High watermark: frees beyond this drain a batch to the global list.
    high: u64,
    /// Refill batch size when the pageset runs dry.
    batch: u64,
}

/// Per-core pagesets over an (unbounded) global free list.
///
/// The global list is modeled as infinite — the paper's hosts have 256GB of
/// RAM and never approach OOM; what matters is the *cost asymmetry* between
/// pcp hits and global refills, not global exhaustion.
#[derive(Debug)]
pub struct PageAllocator {
    pcps: Vec<Pcp>,
    cores_per_node: u8,
    /// Fault injection: while set, [`PageAllocator::try_alloc`] refuses
    /// every request (allocator under pressure / reclaim stall).
    failing: bool,
}

/// Linux defaults: pcp batch is 63 pages on large machines; high watermark
/// a few batches. We use round numbers of the same magnitude.
const PCP_HIGH: u64 = 384;
const PCP_BATCH: u64 = 64;

impl PageAllocator {
    /// Build pagesets for `cores` cores (`cores_per_node` used only for
    /// node-locality bookkeeping by callers).
    pub fn new(cores: u16, cores_per_node: u8) -> Self {
        PageAllocator {
            pcps: (0..cores)
                .map(|_| Pcp {
                    free: PCP_HIGH / 2,
                    high: PCP_HIGH,
                    batch: PCP_BATCH,
                })
                .collect(),
            cores_per_node,
            failing: false,
        }
    }

    /// Toggle injected allocation failure (pool-pressure fault window).
    pub fn set_failing(&mut self, failing: bool) {
        self.failing = failing;
    }

    /// True while injected allocation failure is active.
    pub fn failing(&self) -> bool {
        self.failing
    }

    /// Fallible allocation: `None` while an injected failure window is
    /// active (the caller must cope — e.g. leave Rx descriptors unbacked),
    /// otherwise identical to [`PageAllocator::alloc`].
    pub fn try_alloc(&mut self, core: CoreId, pages: u64) -> Option<AllocOutcome> {
        if self.failing {
            return None;
        }
        Some(self.alloc(core, pages))
    }

    /// NUMA node owning `core`'s pageset.
    pub fn node_of(&self, core: CoreId) -> NodeId {
        (core / self.cores_per_node as u16) as NodeId
    }

    /// Allocate `pages` pages on `core` (driver replenishing Rx descriptors,
    /// skb data allocation, …).
    pub fn alloc(&mut self, core: CoreId, pages: u64) -> AllocOutcome {
        let pcp = &mut self.pcps[core as usize];
        let fast = pages.min(pcp.free);
        pcp.free -= fast;
        let mut slow = 0;
        let mut remaining = pages - fast;
        while remaining > 0 {
            // Refill a batch from the global list; the batch beyond what we
            // consume stays in the pageset.
            let take = remaining.min(pcp.batch);
            slow += take;
            remaining -= take;
            if remaining == 0 {
                pcp.free += pcp.batch - take;
            }
        }
        AllocOutcome {
            fast_pages: fast,
            slow_pages: slow,
        }
    }

    /// Free `pages` pages on `core`. `local` is true when the pages belong
    /// to this core's NUMA node; remote frees always take the slow path
    /// (they cannot enter this core's pageset) — this is the §3.1 point that
    /// "page free operations to local NUMA memory are significantly cheaper
    /// than those for remote NUMA memory".
    pub fn free(&mut self, core: CoreId, pages: u64, local: bool) -> AllocOutcome {
        if !local {
            return AllocOutcome {
                fast_pages: 0,
                slow_pages: pages,
            };
        }
        let pcp = &mut self.pcps[core as usize];
        let room = pcp.high.saturating_sub(pcp.free);
        let fast = pages.min(room);
        pcp.free += fast;
        let slow = pages - fast;
        if slow > 0 {
            // Drain a batch back to the global list so the pageset has room
            // again (mirrors Linux's free_pcppages_bulk).
            pcp.free = pcp.high.saturating_sub(pcp.batch);
        }
        AllocOutcome {
            fast_pages: fast,
            slow_pages: slow,
        }
    }

    /// Current pageset depth for a core (diagnostics/tests).
    pub fn pcp_free(&self, core: CoreId) -> u64 {
        self.pcps[core as usize].free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_fast_until_dry() {
        let mut pa = PageAllocator::new(1, 6);
        let start = pa.pcp_free(0);
        let o = pa.alloc(0, start);
        assert_eq!(o.fast_pages, start);
        assert_eq!(o.slow_pages, 0);
        // Next allocation must hit the global list.
        let o2 = pa.alloc(0, 10);
        assert_eq!(o2.slow_pages, 10);
        assert_eq!(o2.fast_pages, 0);
        // Refill batch left leftover pages in the pcp.
        assert_eq!(pa.pcp_free(0), PCP_BATCH - 10);
    }

    #[test]
    fn free_fast_until_high_watermark() {
        let mut pa = PageAllocator::new(1, 6);
        let room = PCP_HIGH - pa.pcp_free(0);
        let o = pa.free(0, room, true);
        assert_eq!(o.fast_pages, room);
        assert_eq!(o.slow_pages, 0);
        // Pageset is now full: further frees drain.
        let o2 = pa.free(0, 5, true);
        assert_eq!(o2.slow_pages, 5);
        assert!(pa.pcp_free(0) < PCP_HIGH);
    }

    #[test]
    fn remote_free_is_always_slow() {
        let mut pa = PageAllocator::new(2, 6);
        let o = pa.free(0, 20, false);
        assert_eq!(o.fast_pages, 0);
        assert_eq!(o.slow_pages, 20);
    }

    #[test]
    fn steady_state_recycling_is_fast() {
        // Alloc/free in small balanced batches: after warmup everything is
        // pcp-hit — the saturation regime of §3.2.
        let mut pa = PageAllocator::new(1, 6);
        let mut slow_total = 0;
        for _ in 0..1_000 {
            let a = pa.alloc(0, 16);
            let f = pa.free(0, 16, true);
            slow_total += a.slow_pages + f.slow_pages;
        }
        assert_eq!(slow_total, 0, "balanced recycling should never go global");
    }

    #[test]
    fn deep_in_flight_causes_global_traffic() {
        // Allocate a large burst (deep socket queue) before freeing: the
        // pageset underflows on alloc and overflows on the bulk free — the
        // high-rate regime of §3.2.
        let mut pa = PageAllocator::new(1, 6);
        let a = pa.alloc(0, 2_000);
        assert!(a.slow_pages > 0);
        let f = pa.free(0, 2_000, true);
        assert!(f.slow_pages > 0);
    }

    #[test]
    fn injected_failure_window() {
        let mut pa = PageAllocator::new(1, 6);
        assert!(pa.try_alloc(0, 4).is_some());
        pa.set_failing(true);
        assert!(pa.failing());
        assert!(pa.try_alloc(0, 4).is_none());
        // The infallible path is unaffected (used by non-fault call sites).
        assert_eq!(pa.alloc(0, 4).total(), 4);
        pa.set_failing(false);
        assert!(pa.try_alloc(0, 4).is_some());
    }

    #[test]
    fn node_of_uses_cores_per_node() {
        let pa = PageAllocator::new(24, 6);
        assert_eq!(pa.node_of(0), 0);
        assert_eq!(pa.node_of(11), 1);
        assert_eq!(pa.node_of(23), 3);
    }

    #[test]
    fn alloc_outcome_merge() {
        let mut a = AllocOutcome {
            fast_pages: 1,
            slow_pages: 2,
        };
        a.merge(AllocOutcome {
            fast_pages: 10,
            slow_pages: 20,
        });
        assert_eq!(a.fast_pages, 11);
        assert_eq!(a.slow_pages, 22);
        assert_eq!(a.total(), 33);
    }
}
