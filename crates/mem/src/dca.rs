//! DCA / Intel DDIO cache model.
//!
//! DDIO lets the NIC DMA incoming frames directly into a slice of the
//! NIC-local L3 cache — by default 2 of the 11 ways, which on the paper's
//! testbed is ~18% of the 20MB L3, "~3MB" (§3.1, footnote 7). The paper
//! finds two distinct reasons why even a single flow sees ~49% cache
//! misses, and this model reproduces both analytically:
//!
//! 1. **BDP/backlog exceeding the DCA slice.** DDIO writes allocate into
//!    `w = 2` ways per cache set; the set a line maps to is effectively
//!    uniform. A frame DMAed now is evicted before its copy iff at least
//!    `w` newer DMA writes land in its set first. If `D` bytes are DMAed
//!    between a frame's arrival and its copy, arrivals to its set are
//!    ≈ Poisson with mean `μ = w·D/C` (C = slice capacity), so
//!    `P(survive) = P(Poisson(μ) < w) = e^{−μ}(1 + μ)`.
//!    At the paper's default operating point the copy lag is ≈ half the
//!    auto-tuned 6MB receive buffer (skb truesize accounting — see
//!    `hns-proto`'s receiver), i.e. D ≈ 3MB against C ≈ 3.6MB → μ ≈ 1.7 →
//!    51% survival — the measured 49% miss rate.
//!
//! 2. **Suboptimal utilization from large descriptor pools** (Fig. 3e):
//!    with many Rx descriptors the NIC's writes spread over more distinct
//!    physical addresses and complex addressing wastes capacity. Modeled
//!    as an additive hazard `μ_conflict` growing with the descriptor-pool
//!    footprint.
//!
//! The model is *lazy*: `insert` stamps the frame with the cumulative DMA
//! byte counter; `probe_copy` computes survival at copy time and draws the
//! outcome deterministically from the seeded RNG. Cross-flow pollution
//! (§3.3 incast) emerges because the DMA counter is global: other flows'
//! arrivals raise every frame's `D`.

use hns_sim::SimRng;

use crate::frame::{FrameArena, FrameId};

/// DDIO allocation ways per set (Intel default: 2 of 11).
const DDIO_WAYS: f64 = 2.0;

/// Conflict-hazard slope per unit of (footprint/capacity − 1); calibrated
/// against Fig. 3e (rings ≤512×9000B ≈ 4.4MB barely conflict; the mlx5
/// default of 1024 descriptors adds a mild floor; 4096 descriptors hurt
/// badly).
const CONFLICT_SLOPE: f64 = 0.16;
/// Hazard ceiling.
const CONFLICT_MAX: f64 = 2.2;

/// Running statistics exported to reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct DcaStats {
    /// Frames inserted by NIC DMA.
    pub inserts: u64,
    /// Copy probes that hit.
    pub hits: u64,
    /// Copy probes that missed (evicted before copy).
    pub misses: u64,
}

/// The DDIO slice of the NIC-local L3 cache.
#[derive(Debug)]
pub struct DcaCache {
    enabled: bool,
    capacity: u64,
    /// Cumulative bytes DMAed through the slice.
    dma_bytes: u64,
    /// Additive eviction hazard from the descriptor-pool footprint.
    conflict_mu: f64,
    rng: SimRng,
    stats: DcaStats,
}

/// Default DCA capacity: 18% of the 20MB L3 (paper footnote 7: "~3 MB").
pub const DEFAULT_DCA_CAPACITY: u64 = (20 * 1024 * 1024) * 18 / 100;

impl DcaCache {
    /// Create the cache. `enabled = false` models BIOS-disabled DDIO
    /// (§3.8): frames are never inserted so every copy misses.
    pub fn new(enabled: bool, capacity: u64, seed: u64) -> Self {
        DcaCache {
            enabled,
            capacity,
            dma_bytes: 0,
            conflict_mu: 0.0,
            rng: SimRng::new(seed),
            stats: DcaStats::default(),
        }
    }

    /// Cache with the paper-testbed default capacity.
    pub fn with_defaults(enabled: bool, seed: u64) -> Self {
        Self::new(enabled, DEFAULT_DCA_CAPACITY, seed)
    }

    /// Configure the Rx descriptor-pool footprint (descriptors × buffer
    /// size) which drives the conflict hazard.
    pub fn set_descriptor_footprint(&mut self, footprint_bytes: u64) {
        let ratio = footprint_bytes as f64 / self.capacity as f64;
        self.conflict_mu = (CONFLICT_SLOPE * (ratio - 1.0).max(0.0)).min(CONFLICT_MAX);
    }

    /// Current conflict hazard (exposed for tests/calibration).
    pub fn conflict_mu(&self) -> f64 {
        self.conflict_mu
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DcaStats {
        self.stats
    }

    /// NIC DMA of `frame` into the slice: stamp it with the DMA clock.
    /// No-op when DDIO is disabled (the frame then counts as never
    /// cached).
    pub fn insert(&mut self, arena: &mut FrameArena, frame: FrameId) {
        let bytes = arena.bytes(frame);
        if !self.enabled || bytes == 0 {
            return;
        }
        self.stats.inserts += 1;
        arena.set_dca_inserted(frame, self.dma_bytes);
        self.dma_bytes += bytes;
    }

    /// Probability that a frame survives until copy after `lag` bytes of
    /// subsequent DMA traffic: `P(Poisson(w·lag/C + μ_conflict) < w)`.
    pub fn survival_probability(&self, lag_bytes: u64) -> f64 {
        let mu = DDIO_WAYS * lag_bytes as f64 / self.capacity as f64 + self.conflict_mu;
        (-mu).exp() * (1.0 + mu)
    }

    /// At copy time: is this frame's data still in the DCA slice? Draws
    /// the survival Bernoulli exactly once (callers probe each frame once,
    /// at its copy).
    pub fn probe_copy(&mut self, arena: &FrameArena, frame: FrameId) -> bool {
        let mark = match arena.dca_mark(frame) {
            Some(m) => m,
            None => return false, // never inserted (DCA off / remote node)
        };
        let lag = self.dma_bytes.saturating_sub(mark);
        let p = self.survival_probability(lag);
        let hit = self.rng.chance(p);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Total bytes DMAed through the slice (diagnostics).
    pub fn dma_bytes(&self) -> u64 {
        self.dma_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_with_frames(n: usize, bytes: u32) -> (FrameArena, Vec<FrameId>) {
        let mut a = FrameArena::new();
        let ids = (0..n).map(|_| a.insert(bytes, 0)).collect();
        (a, ids)
    }

    #[test]
    fn disabled_cache_always_misses() {
        let (mut a, ids) = arena_with_frames(1, 9000);
        let mut c = DcaCache::new(false, DEFAULT_DCA_CAPACITY, 1);
        c.insert(&mut a, ids[0]);
        assert!(!c.probe_copy(&a, ids[0]));
        assert_eq!(c.stats().inserts, 0);
    }

    #[test]
    fn immediate_copy_almost_always_hits() {
        let mut hits = 0;
        for seed in 0..200 {
            let (mut a, ids) = arena_with_frames(1, 9000);
            let mut c = DcaCache::with_defaults(true, seed);
            c.insert(&mut a, ids[0]);
            if c.probe_copy(&a, ids[0]) {
                hits += 1;
            }
        }
        // lag = 0 → survival ≈ 1.
        assert!(hits >= 198, "hits = {hits}");
    }

    #[test]
    fn survival_decreases_with_lag() {
        let c = DcaCache::with_defaults(true, 1);
        let mut last = 1.1;
        for mb in [0u64, 1, 2, 4, 8, 16] {
            let p = c.survival_probability(mb << 20);
            assert!(p < last, "not monotone at {mb}MB");
            last = p;
        }
    }

    #[test]
    fn paper_operating_point_near_half() {
        // D ≈ 3MB lag vs 3.6MB slice → ≈51% survival (the paper's 49%
        // miss).
        let c = DcaCache::with_defaults(true, 1);
        let p = c.survival_probability(3 << 20);
        assert!((0.45..0.58).contains(&p), "survival = {p}");
    }

    #[test]
    fn small_lag_mostly_survives() {
        let c = DcaCache::with_defaults(true, 1);
        let p = c.survival_probability(800 << 10); // 800KB
        assert!(p > 0.9, "survival = {p}");
    }

    #[test]
    fn conflict_hazard_grows_with_footprint() {
        let mut c = DcaCache::with_defaults(true, 1);
        c.set_descriptor_footprint(512 * 9000);
        let small = c.conflict_mu();
        let p_small = c.survival_probability(0);
        c.set_descriptor_footprint(8192 * 9000);
        let large = c.conflict_mu();
        let p_large = c.survival_probability(0);
        assert!(
            small < 0.08,
            "512-descriptor pool should barely conflict: {small}"
        );
        assert!(large > 0.5, "8192-descriptor pool should conflict: {large}");
        assert!(p_large < p_small);
    }

    #[test]
    fn empirical_miss_rate_matches_analytic() {
        // Simulate a steady pipeline with 3MB of copy lag and check the
        // sampled miss rate tracks the formula.
        let mut a = FrameArena::new();
        let mut c = DcaCache::with_defaults(true, 42);
        let lag_frames = (3 << 20) / 9000;
        let mut queue = std::collections::VecDeque::new();
        let mut hits = 0u64;
        let mut probes = 0u64;
        for i in 0..5_000u64 {
            let f = a.insert(9000, 0);
            c.insert(&mut a, f);
            queue.push_back(f);
            if i >= lag_frames {
                let victim = queue.pop_front().unwrap();
                if c.probe_copy(&a, victim) {
                    hits += 1;
                }
                probes += 1;
                a.release(victim);
            }
        }
        let hit_rate = hits as f64 / probes as f64;
        let expect = c.survival_probability(3 << 20);
        assert!(
            (hit_rate - expect).abs() < 0.05,
            "hit {hit_rate:.3} vs analytic {expect:.3}"
        );
    }

    #[test]
    fn cross_flow_pollution_raises_lag() {
        // Two flows DMA concurrently: each frame's lag includes the other
        // flow's bytes — the §3.3 incast pollution effect.
        let mut a = FrameArena::new();
        let mut c = DcaCache::with_defaults(true, 9);
        let f1 = a.insert(9000, 0);
        c.insert(&mut a, f1);
        // 2MB of other-flow traffic before f1's copy.
        for _ in 0..233 {
            let g = a.insert(9000, 0);
            c.insert(&mut a, g);
        }
        let lag = c.dma_bytes();
        assert!(lag > 2 << 20);
        // Survival must reflect the polluted lag, not f1's own traffic.
        let p = c.survival_probability(lag - 9000);
        assert!(p < 0.8, "pollution should hurt: {p}");
    }
}
