//! Sender-side L3 warmth model (§3.4).
//!
//! On the sender the application's send buffer was just written by the
//! application, so the L3 is warm and user→kernel data copy is cheap. The
//! paper observes the sender-side cache miss rate staying low but creeping
//! up with flow count ("~11% even with 24 flows", Fig. 7c) as many flows'
//! send buffers contend for the same L3.
//!
//! Modeling per-line sender cache behaviour would add enormous simulation
//! cost for a second-order effect, so this is a *statistical* model: miss
//! rate is a smooth, saturating function of the ratio of active send-buffer
//! bytes to L3 capacity. The calibration point is the paper's Fig. 7c.

/// Statistical sender-side L3 model for one NUMA node.
#[derive(Clone, Copy, Debug)]
pub struct SenderL3 {
    /// Full L3 capacity of the node in bytes (paper: 20MB).
    capacity: u64,
}

/// Shape constant: miss = SHAPE · active / (active + capacity).
/// With 24 flows × ~0.6MB in-flight each (≈14MB active) against a 20MB L3
/// this lands near the paper's ~11%.
const SHAPE: f64 = 0.27;

/// Default L3 capacity (paper testbed: 20MB per socket).
pub const DEFAULT_L3_CAPACITY: u64 = 20 * 1024 * 1024;

impl SenderL3 {
    /// Model with explicit capacity.
    pub fn new(capacity: u64) -> Self {
        SenderL3 { capacity }
    }

    /// Model with the paper-testbed capacity.
    pub fn with_defaults() -> Self {
        Self::new(DEFAULT_L3_CAPACITY)
    }

    /// Expected miss rate for user→kernel copies given the total bytes of
    /// send-buffer data currently active on this node.
    pub fn miss_rate(&self, active_buffer_bytes: u64) -> f64 {
        let a = active_buffer_bytes as f64;
        let c = self.capacity as f64;
        SHAPE * a / (a + c)
    }
}

impl Default for SenderL3 {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_is_nearly_free() {
        let l3 = SenderL3::with_defaults();
        // One flow with ~1MB of in-flight send buffer.
        let m = l3.miss_rate(1 << 20);
        assert!(m < 0.02, "single-flow sender miss should be tiny: {m}");
    }

    #[test]
    fn twenty_four_flows_near_paper_point() {
        let l3 = SenderL3::with_defaults();
        // 24 flows × ~0.6MB active.
        let m = l3.miss_rate(24 * 600 * 1024);
        assert!((0.06..0.16).contains(&m), "expected ≈11%, got {m}");
    }

    #[test]
    fn monotone_in_active_bytes() {
        let l3 = SenderL3::with_defaults();
        let mut last = -1.0;
        for mb in [0u64, 1, 4, 16, 64, 256] {
            let m = l3.miss_rate(mb << 20);
            assert!(m >= last);
            last = m;
        }
    }

    #[test]
    fn bounded_below_shape() {
        let l3 = SenderL3::with_defaults();
        assert!(l3.miss_rate(u64::MAX / 2) <= SHAPE + 1e-9);
        assert_eq!(l3.miss_rate(0), 0.0);
    }
}
