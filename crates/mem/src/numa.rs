//! NUMA topology and memory-access classification.
//!
//! The paper's testbed has four NUMA nodes with six cores each and the NIC
//! attached to node 0. Data copy cost depends on *where the bytes are*:
//! resident in the NIC-local L3 (DDIO hit), in local-node DRAM, or in a
//! remote node's DRAM. DDIO can only push into the L3 of the NIC-local node,
//! which is what produces the ~20% throughput drop of Fig. 4.

/// A NUMA node index.
pub type NodeId = u8;
/// A CPU core index (global across nodes).
pub type CoreId = u16;

/// Where copied bytes were found, in increasing order of per-byte cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemClass {
    /// Resident in the DCA (DDIO) slice of the NIC-local L3.
    DcaHit,
    /// DRAM on the same NUMA node as the copying core.
    LocalDram,
    /// DRAM on a different NUMA node (cross-socket interconnect).
    RemoteDram,
}

/// Host NUMA topology. Matches the paper's testbed by default.
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    /// Number of NUMA nodes (paper: 4).
    pub nodes: u8,
    /// Cores per node (paper: 6).
    pub cores_per_node: u8,
    /// Node the NIC's PCIe lanes attach to (paper: 0).
    pub nic_node: NodeId,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            nodes: 4,
            cores_per_node: 6,
            nic_node: 0,
        }
    }
}

impl Topology {
    /// Total core count.
    pub fn total_cores(&self) -> u16 {
        self.nodes as u16 * self.cores_per_node as u16
    }

    /// NUMA node of a core.
    pub fn node_of(&self, core: CoreId) -> NodeId {
        debug_assert!(core < self.total_cores());
        (core / self.cores_per_node as u16) as NodeId
    }

    /// True if `core` is on the NIC-local node.
    pub fn is_nic_local(&self, core: CoreId) -> bool {
        self.node_of(core) == self.nic_node
    }

    /// The `i`-th core of a node.
    pub fn core_on_node(&self, node: NodeId, i: u8) -> CoreId {
        debug_assert!(node < self.nodes && i < self.cores_per_node);
        node as u16 * self.cores_per_node as u16 + i as u16
    }

    /// Classify a copy by a core on `copier_node` of data on `data_node`,
    /// given whether the bytes are DCA-resident.
    ///
    /// DCA residency only helps a copier on the NIC-local node — DDIO
    /// writes land in the NIC-local L3, which remote-node cores cannot hit.
    pub fn classify(&self, copier_node: NodeId, data_node: NodeId, dca_resident: bool) -> MemClass {
        if dca_resident && copier_node == self.nic_node && data_node == self.nic_node {
            MemClass::DcaHit
        } else if copier_node == data_node {
            MemClass::LocalDram
        } else {
            MemClass::RemoteDram
        }
    }

    /// Pick the core for the `i`-th application using the paper's placement:
    /// fill the NIC-local node first, then spill to remote nodes, one thread
    /// per core.
    pub fn app_core(&self, i: u16) -> CoreId {
        i % self.total_cores()
    }

    /// Pick a core on a node different from `avoid_node` — the paper's
    /// deterministic worst-case IRQ mapping when aRFS is disabled (§3.1:
    /// "we explicitly map the IRQs to a core on a NUMA node different from
    /// the application core").
    pub fn remote_core(&self, avoid_node: NodeId, i: u16) -> CoreId {
        let other_nodes: Vec<NodeId> = (0..self.nodes).filter(|&n| n != avoid_node).collect();
        assert!(
            !other_nodes.is_empty(),
            "need ≥2 NUMA nodes for remote IRQ mapping"
        );
        let node = other_nodes[(i as usize / self.cores_per_node as usize) % other_nodes.len()];
        self.core_on_node(node, (i % self.cores_per_node as u16) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let t = Topology::default();
        assert_eq!(t.total_cores(), 24);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(5), 0);
        assert_eq!(t.node_of(6), 1);
        assert_eq!(t.node_of(23), 3);
        assert!(t.is_nic_local(3));
        assert!(!t.is_nic_local(7));
    }

    #[test]
    fn core_on_node_inverse_of_node_of() {
        let t = Topology::default();
        for node in 0..t.nodes {
            for i in 0..t.cores_per_node {
                let c = t.core_on_node(node, i);
                assert_eq!(t.node_of(c), node);
            }
        }
    }

    #[test]
    fn classify_dca_requires_nic_local() {
        let t = Topology::default();
        assert_eq!(t.classify(0, 0, true), MemClass::DcaHit);
        assert_eq!(t.classify(0, 0, false), MemClass::LocalDram);
        // Remote copier cannot exploit DDIO even if flagged resident.
        assert_eq!(t.classify(1, 1, true), MemClass::LocalDram);
        assert_eq!(t.classify(1, 0, true), MemClass::RemoteDram);
        assert_eq!(t.classify(2, 3, false), MemClass::RemoteDram);
    }

    #[test]
    fn remote_core_avoids_node() {
        let t = Topology::default();
        for i in 0..48 {
            let c = t.remote_core(0, i);
            assert_ne!(t.node_of(c), 0, "core {c} is on the avoided node");
        }
        // Deterministic.
        assert_eq!(t.remote_core(0, 3), t.remote_core(0, 3));
    }

    #[test]
    fn app_core_fills_local_node_first() {
        let t = Topology::default();
        for i in 0..6 {
            assert!(t.is_nic_local(t.app_core(i)));
        }
        assert!(!t.is_nic_local(t.app_core(6)));
        // Wraps around.
        assert_eq!(t.app_core(24), t.app_core(0));
    }
}
