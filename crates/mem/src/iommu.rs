//! IOMMU model (§3.9).
//!
//! With the IOMMU enabled, DMA addresses are virtual: the NIC driver must
//! (1) insert every newly allocated DMA page into the device's IOMMU
//! page table (domain), and (2) unmap those pages once DMA completes. Both
//! are per-page operations, and the paper measures them pushing memory
//! management to ~30% of receiver CPU cycles and costing 26% of
//! throughput-per-core.
//!
//! The model is bookkeeping plus counters: the *costs* of map/unmap are
//! charged by the stack's cost model using the page counts returned here.

/// IOMMU state for one host.
#[derive(Clone, Copy, Debug, Default)]
pub struct Iommu {
    enabled: bool,
    /// Pages currently mapped in the device domain.
    mapped_pages: u64,
    /// Lifetime map operations.
    pub total_maps: u64,
    /// Lifetime unmap operations.
    pub total_unmaps: u64,
}

impl Iommu {
    /// Create; `enabled = false` (the paper's default) makes map/unmap free.
    pub fn new(enabled: bool) -> Self {
        Iommu {
            enabled,
            ..Default::default()
        }
    }

    /// Whether the IOMMU is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Map `pages` pages for device DMA. Returns the number of page-table
    /// insertions to charge (0 when disabled).
    pub fn map(&mut self, pages: u64) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.mapped_pages += pages;
        self.total_maps += pages;
        pages
    }

    /// Unmap `pages` pages after DMA completion. Returns the number of
    /// page-table removals (plus IOTLB invalidations) to charge.
    pub fn unmap(&mut self, pages: u64) -> u64 {
        if !self.enabled {
            return 0;
        }
        debug_assert!(self.mapped_pages >= pages, "unmapping more than mapped");
        self.mapped_pages = self.mapped_pages.saturating_sub(pages);
        self.total_unmaps += pages;
        pages
    }

    /// Pages currently mapped (diagnostics).
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_free() {
        let mut io = Iommu::new(false);
        assert_eq!(io.map(10), 0);
        assert_eq!(io.unmap(10), 0);
        assert_eq!(io.mapped_pages(), 0);
    }

    #[test]
    fn enabled_tracks_domain() {
        let mut io = Iommu::new(true);
        assert_eq!(io.map(10), 10);
        assert_eq!(io.mapped_pages(), 10);
        assert_eq!(io.unmap(4), 4);
        assert_eq!(io.mapped_pages(), 6);
        assert_eq!(io.total_maps, 10);
        assert_eq!(io.total_unmaps, 4);
    }

    #[test]
    fn balanced_map_unmap_returns_to_zero() {
        let mut io = Iommu::new(true);
        for _ in 0..100 {
            io.map(3);
            io.unmap(3);
        }
        assert_eq!(io.mapped_pages(), 0);
        assert_eq!(io.total_maps, 300);
    }
}
