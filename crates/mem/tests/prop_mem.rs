//! Property tests for the memory subsystem models.

use hns_mem::{DcaCache, FrameArena, PageAllocator};
use proptest::prelude::*;

proptest! {
    /// The DCA survival model is a valid probability, monotone
    /// non-increasing in copy lag, and exactly 1-at-zero-lag when no
    /// conflict hazard applies.
    #[test]
    fn dca_survival_is_monotone_probability(
        capacity_kb in 64u64..65_536,
        lags in proptest::collection::vec(0u64..(64 << 20), 2..50),
    ) {
        let cache = DcaCache::new(true, capacity_kb << 10, 1);
        let mut sorted = lags.clone();
        sorted.sort_unstable();
        let mut last = f64::INFINITY;
        for lag in sorted {
            let p = cache.survival_probability(lag);
            prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
            prop_assert!(p <= last + 1e-12, "not monotone");
            last = p;
        }
        prop_assert!((cache.survival_probability(0) - 1.0).abs() < 1e-12);
    }

    /// DMA clock advances by exactly the inserted bytes, and probes of
    /// never-inserted frames always miss.
    #[test]
    fn dca_clock_and_probe(
        sizes in proptest::collection::vec(1u32..65_536, 1..100),
        seed in any::<u64>(),
    ) {
        let mut arena = FrameArena::new();
        let mut cache = DcaCache::new(true, 4 << 20, seed);
        let mut total = 0u64;
        for &s in &sizes {
            let f = arena.insert(s, 0);
            cache.insert(&mut arena, f);
            total += s as u64;
        }
        prop_assert_eq!(cache.dma_bytes(), total);
        let stray = arena.insert(1000, 0);
        prop_assert!(!cache.probe_copy(&arena, stray), "uninserted frame must miss");
    }

    /// The page allocator conserves pages: every request is fully served,
    /// split between fast and slow paths, and the pageset never exceeds its
    /// high watermark by more than transient drain behaviour.
    #[test]
    fn page_allocator_conserves(
        reqs in proptest::collection::vec((1u64..200, any::<bool>(), any::<bool>()), 1..300),
    ) {
        let mut pa = PageAllocator::new(4, 2);
        for (pages, is_alloc, local) in reqs {
            let out = if is_alloc {
                pa.alloc(1, pages)
            } else {
                pa.free(1, pages, local)
            };
            prop_assert_eq!(out.fast_pages + out.slow_pages, pages);
        }
    }

    /// Frame arena: live count tracks inserts minus releases; ids stay
    /// valid until released.
    #[test]
    fn frame_arena_live_count(sizes in proptest::collection::vec(1u32..65536, 1..200)) {
        let mut a = FrameArena::new();
        let ids: Vec<_> = sizes.iter().map(|&s| a.insert(s, 0)).collect();
        prop_assert_eq!(a.live_count(), ids.len());
        for (i, &id) in ids.iter().enumerate() {
            prop_assert!(a.is_live(id));
            prop_assert_eq!(a.bytes(id), sizes[i] as u64);
        }
        for &id in &ids {
            a.release(id);
        }
        prop_assert_eq!(a.live_count(), 0);
    }
}
