//! # hns-workload — traffic patterns and application placement
//!
//! Builders for the paper's five traffic patterns (Fig. 2) plus the
//! short-flow and mixed workloads of §3.7:
//!
//! * **single** — one flow, one sender core, one receiver core;
//! * **one-to-one** — each sender core sends to one unique receiver core;
//! * **incast** — every sender core targets a single receiver core;
//! * **outcast** — one sender core feeds every receiver core;
//! * **all-to-all** — a flow between every pair of x sender and x receiver
//!   cores;
//! * **RPC incast** — n netperf-style ping-pong clients against a single
//!   server application (16:1 in the paper);
//! * **mixed** — one long flow plus n 4KB RPC flows sharing a single core
//!   on each side.
//!
//! Placement follows the paper's method: application threads fill the
//! NIC-local NUMA node first and spill to remote nodes
//! ([`Topology::app_core`]); a [`Placement`] override pins everything to
//! NIC-remote cores for the Fig. 4 / Fig. 10c experiments.

use hns_conn::{AdmissionPolicy, ChurnConfig, ChurnMode, OverloadConfig};
use hns_mem::numa::{CoreId, Topology};
use hns_sim::Duration;
use hns_stack::{AppSpec, FlowSpec, World};

/// Where application threads are placed relative to the NIC.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Fill the NIC-local NUMA node first (the paper's default).
    NicLocalFirst,
    /// Use only NIC-remote cores (Fig. 4, Fig. 10c).
    NicRemote,
}

impl Placement {
    /// Core for the `i`-th application thread on a host.
    pub fn core(self, topo: &Topology, i: u16) -> CoreId {
        match self {
            Placement::NicLocalFirst => topo.app_core(i),
            Placement::NicRemote => {
                let remote_nodes = topo.nodes - 1;
                let per = topo.cores_per_node as u16;
                let node = 1 + ((i / per) % remote_nodes as u16) as u8;
                topo.core_on_node(node, (i % per) as u8)
            }
        }
    }
}

/// A scenario: flows plus applications, ready to instantiate on a world.
#[derive(Clone, Debug, Default)]
pub struct Scenario {
    /// Flow placements (indices become [`hns_stack::flow::Flow`] ids).
    pub flows: Vec<FlowSpec>,
    /// Applications: `(host, core, spec)` — flow ids refer to `flows`.
    pub apps: Vec<(usize, CoreId, AppSpec)>,
}

impl Scenario {
    /// Install the scenario into a world.
    pub fn install(self, world: &mut World) {
        for spec in self.flows {
            world.add_flow(spec);
        }
        for (host, core, app) in self.apps {
            world.add_app(host, core, app);
        }
    }

    /// Number of long flows in the scenario.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }
}

/// One long flow between the first cores of each host (Fig. 3).
pub fn single_flow(topo: &Topology, placement: Placement) -> Scenario {
    let s = placement.core(topo, 0);
    let d = placement.core(topo, 0);
    Scenario {
        flows: vec![FlowSpec::forward(s, d)],
        apps: vec![
            (0, s, AppSpec::LongSender { flow: 0 }),
            (1, d, AppSpec::LongReceiver { flow: 0 }),
        ],
    }
}

/// `n` flows, one per (sender core, receiver core) pair (Fig. 5).
pub fn one_to_one(topo: &Topology, n: u16) -> Scenario {
    let mut sc = Scenario::default();
    for i in 0..n {
        let s = topo.app_core(i);
        let d = topo.app_core(i);
        let id = sc.flows.len() as u64;
        sc.flows.push(FlowSpec::forward(s, d));
        sc.apps.push((0, s, AppSpec::LongSender { flow: id }));
        sc.apps.push((1, d, AppSpec::LongReceiver { flow: id }));
    }
    sc
}

/// `n` sender cores all feeding receiver core 0 (Fig. 6).
pub fn incast(topo: &Topology, n: u16) -> Scenario {
    let mut sc = Scenario::default();
    let d = topo.app_core(0);
    for i in 0..n {
        let s = topo.app_core(i);
        let id = sc.flows.len() as u64;
        sc.flows.push(FlowSpec::forward(s, d));
        sc.apps.push((0, s, AppSpec::LongSender { flow: id }));
        sc.apps.push((1, d, AppSpec::LongReceiver { flow: id }));
    }
    sc
}

/// One sender core feeding `n` receiver cores (Fig. 7).
pub fn outcast(topo: &Topology, n: u16) -> Scenario {
    let mut sc = Scenario::default();
    let s = topo.app_core(0);
    for i in 0..n {
        let d = topo.app_core(i);
        let id = sc.flows.len() as u64;
        sc.flows.push(FlowSpec::forward(s, d));
        sc.apps.push((0, s, AppSpec::LongSender { flow: id }));
        sc.apps.push((1, d, AppSpec::LongReceiver { flow: id }));
    }
    sc
}

/// A flow between every pair of `x` sender and `x` receiver cores
/// (Fig. 8): `x²` flows, `x` sender apps per core.
pub fn all_to_all(topo: &Topology, x: u16) -> Scenario {
    let mut sc = Scenario::default();
    for i in 0..x {
        for j in 0..x {
            let s = topo.app_core(i);
            let d = topo.app_core(j);
            let id = sc.flows.len() as u64;
            sc.flows.push(FlowSpec::forward(s, d));
            sc.apps.push((0, s, AppSpec::LongSender { flow: id }));
            sc.apps.push((1, d, AppSpec::LongReceiver { flow: id }));
        }
    }
    sc
}

/// `clients` ping-pong RPC clients (one per sender core) against a single
/// server application on one receiver core (Fig. 10: 16:1 incast).
pub fn rpc_incast(
    topo: &Topology,
    clients: u16,
    rpc_size: u32,
    server_placement: Placement,
) -> Scenario {
    let mut sc = Scenario::default();
    let server_core = server_placement.core(topo, 0);
    let mut conns = Vec::new();
    for i in 0..clients {
        let c = topo.app_core(i);
        let req = sc.flows.len() as u64;
        sc.flows.push(FlowSpec::forward(c, server_core));
        let resp = sc.flows.len() as u64;
        sc.flows.push(FlowSpec::reverse(server_core, c));
        sc.apps.push((
            0,
            c,
            AppSpec::RpcClient {
                tx: req,
                rx: resp,
                size: rpc_size,
            },
        ));
        conns.push((req, resp));
    }
    sc.apps.push((
        1,
        server_core,
        AppSpec::RpcServer {
            conns,
            size: rpc_size,
        },
    ));
    sc
}

/// One long flow plus `shorts` RPC flows, everything sharing core 0 on
/// both hosts (Fig. 11).
pub fn mixed_long_short(topo: &Topology, shorts: u16, rpc_size: u32) -> Scenario {
    let core = topo.app_core(0);
    let mut sc = Scenario::default();
    // The long flow.
    sc.flows.push(FlowSpec::forward(core, core));
    sc.apps.push((0, core, AppSpec::LongSender { flow: 0 }));
    sc.apps.push((1, core, AppSpec::LongReceiver { flow: 0 }));
    // Short RPC flows, one client app each, one server app for all.
    let mut conns = Vec::new();
    for _ in 0..shorts {
        let req = sc.flows.len() as u64;
        sc.flows.push(FlowSpec::forward(core, core));
        let resp = sc.flows.len() as u64;
        sc.flows.push(FlowSpec::reverse(core, core));
        sc.apps.push((
            0,
            core,
            AppSpec::RpcClient {
                tx: req,
                rx: resp,
                size: rpc_size,
            },
        ));
        conns.push((req, resp));
    }
    if !conns.is_empty() {
        sc.apps.push((
            1,
            core,
            AppSpec::RpcServer {
                conns,
                size: rpc_size,
            },
        ));
    }
    sc
}

/// The long-flow id in a [`mixed_long_short`] scenario.
pub const MIXED_LONG_FLOW: u64 = 0;

// ----------------------------------------------------------------------
// Fabric workloads (N hosts behind a ToR switch; `SimConfig::fabric`)
// ----------------------------------------------------------------------

/// Host id of the `i`-th sender in a fabric scenario. The receiver is
/// pinned at host 1 (the churn engine's server host), so senders occupy
/// 0, 2, 3, … — `n` senders need a fabric of `n + 1` hosts.
pub fn fabric_sender_host(i: u16) -> usize {
    if i == 0 {
        0
    } else {
        i as usize + 1
    }
}

/// Switch-level incast (fig_incast): `n` sender hosts each run one long
/// flow from their local core 0 into the single receiver host 1, whose
/// ToR egress port is the shared bottleneck. Receive processing spreads
/// across the receiver's application cores, so the collapse that shows
/// up is the *switch buffer* filling — not a pinned receiver core.
/// Requires `SimConfig::fabric` with at least `n + 1` hosts.
pub fn fabric_incast(topo: &Topology, n: u16) -> Scenario {
    let mut sc = Scenario::default();
    let s = topo.app_core(0);
    for i in 0..n {
        let host = fabric_sender_host(i);
        let d = topo.app_core(i);
        let id = sc.flows.len() as u64;
        sc.flows.push(FlowSpec::between(host, s, 1, d));
        sc.apps.push((host, s, AppSpec::LongSender { flow: id }));
        sc.apps.push((1, d, AppSpec::LongReceiver { flow: id }));
    }
    sc
}

/// Mixed-tenant fabric workload: `longs` long flows from distinct sender
/// hosts plus `shorts` 4KB-class RPC pairs from host 0, every byte landing
/// on the receiver's core 0 — the long flows and the latency-sensitive
/// RPCs share one DCA slice, one softirq core, and one switch egress port.
/// Layer connection churn on top with [`churn_short_rpc`] (the churn
/// engine's client/server pair is hosts 0/1, which this placement keeps
/// busy) for the full long + short + lifecycle contention mix.
pub fn fabric_mixed_tenant(topo: &Topology, longs: u16, shorts: u16, rpc_size: u32) -> Scenario {
    let core = topo.app_core(0);
    let mut sc = Scenario::default();
    for i in 0..longs {
        let host = fabric_sender_host(i);
        let id = sc.flows.len() as u64;
        sc.flows.push(FlowSpec::between(host, core, 1, core));
        sc.apps.push((host, core, AppSpec::LongSender { flow: id }));
        sc.apps.push((1, core, AppSpec::LongReceiver { flow: id }));
    }
    let mut conns = Vec::new();
    for _ in 0..shorts {
        let req = sc.flows.len() as u64;
        sc.flows.push(FlowSpec::between(0, core, 1, core));
        let resp = sc.flows.len() as u64;
        sc.flows.push(FlowSpec::between(1, core, 0, core));
        sc.apps.push((
            0,
            core,
            AppSpec::RpcClient {
                tx: req,
                rx: resp,
                size: rpc_size,
            },
        ));
        conns.push((req, resp));
    }
    if !conns.is_empty() {
        sc.apps.push((
            1,
            core,
            AppSpec::RpcServer {
                conns,
                size: rpc_size,
            },
        ));
    }
    sc
}

// ----------------------------------------------------------------------
// Churn workloads (connection lifecycle; `hns-conn`)
// ----------------------------------------------------------------------

/// Open-loop connection churn at `rate_cps`: each arrival performs a full
/// 3-way handshake and immediately closes — pure per-connection overhead
/// with no payload. The conn/s scaling workload (fig05_conn_rate).
pub fn churn_open_loop(rate_cps: f64) -> ChurnConfig {
    ChurnConfig {
        mode: ChurnMode::HandshakeOnly,
        rate_cps,
        ..ChurnConfig::default()
    }
}

/// Short-RPC-with-handshake churn: every arrival opens a connection,
/// exchanges one `rpc_size`-byte request/response, and closes — the
/// paper's short-flow regime *including* the setup cost its figures omit.
pub fn churn_short_rpc(rate_cps: f64, rpc_size: u32) -> ChurnConfig {
    ChurnConfig {
        mode: ChurnMode::ShortRpc,
        rate_cps,
        rpc_size,
        ..ChurnConfig::default()
    }
}

/// A long-lived pool of `conns` pre-established connections with partial
/// churn at `rate_cps` (each arrival closes the oldest member and opens a
/// replacement) — a busy front-end's steady state, sized for million-flow
/// scaling runs.
pub fn churn_pool(conns: u32, rate_cps: f64) -> ChurnConfig {
    ChurnConfig {
        mode: ChurnMode::Pool { conns },
        rate_cps,
        ..ChurnConfig::default()
    }
}

/// Connection attempts per second each simulated capacity client issues.
pub const CAPACITY_CLIENT_CPS: f64 = 400.0;

/// Overload capacity probe: `clients` concurrent short-RPC clients (at
/// [`CAPACITY_CLIENT_CPS`] attempts/s each) against a server with a finite
/// listen queue, a connection-memory budget, and an idle reaper — under the
/// given admission `policy`. A quarter of the clients are heavy-tailed slow
/// thinkers, so accept-queue slots and sockets get pinned for milliseconds
/// at a time; that pinning, not raw packet rate, is what bends the goodput
/// and tail-latency curves at the capacity knee (fig_capacity).
pub fn churn_capacity(clients: u32, policy: AdmissionPolicy) -> ChurnConfig {
    ChurnConfig {
        mode: ChurnMode::ShortRpc,
        rate_cps: clients as f64 * CAPACITY_CLIENT_CPS,
        rpc_size: 4096,
        overload: OverloadConfig {
            enabled: true,
            policy,
            accept_queue: 128,
            mem_budget: 4 << 20,
            idle_timeout: Duration::from_millis(12),
            slow_prob: 0.25,
            ..OverloadConfig::default()
        },
        ..ChurnConfig::default()
    }
}

/// Open-loop RPC: `clients` Poisson sources (one per sender core) at
/// `rate_rps` requests/second each against one server core — the
/// latency-vs-load workload (a future-work direction the paper names).
pub fn open_loop_rpc(topo: &Topology, clients: u16, rpc_size: u32, rate_rps: f64) -> Scenario {
    let mut sc = Scenario::default();
    let server_core = topo.app_core(0);
    let mean_ns = (1e9 / rate_rps.max(1.0)) as u64;
    let mut conns = Vec::new();
    for i in 0..clients {
        let c = topo.app_core(i);
        let req = sc.flows.len() as u64;
        sc.flows.push(FlowSpec::forward(c, server_core));
        let resp = sc.flows.len() as u64;
        sc.flows.push(FlowSpec::reverse(server_core, c));
        sc.apps.push((
            0,
            c,
            AppSpec::OpenLoopClient {
                tx: req,
                rx: resp,
                size: rpc_size,
                mean_interarrival_ns: mean_ns,
            },
        ));
        conns.push((req, resp));
    }
    sc.apps.push((
        1,
        server_core,
        AppSpec::RpcServer {
            conns,
            size: rpc_size,
        },
    ));
    sc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::default()
    }

    #[test]
    fn single_flow_shape() {
        let sc = single_flow(&topo(), Placement::NicLocalFirst);
        assert_eq!(sc.flows.len(), 1);
        assert_eq!(sc.apps.len(), 2);
        assert_eq!(sc.flows[0].src_core, 0);
    }

    #[test]
    fn nic_remote_placement_avoids_node_zero() {
        let t = topo();
        for i in 0..36 {
            let c = Placement::NicRemote.core(&t, i);
            assert_ne!(t.node_of(c), t.nic_node, "core {c} is NIC-local");
        }
    }

    #[test]
    fn one_to_one_uses_distinct_cores() {
        let sc = one_to_one(&topo(), 24);
        assert_eq!(sc.flows.len(), 24);
        let mut src: Vec<_> = sc.flows.iter().map(|f| f.src_core).collect();
        src.sort_unstable();
        src.dedup();
        assert_eq!(src.len(), 24, "each flow on its own sender core");
    }

    #[test]
    fn incast_converges_on_one_receiver_core() {
        let sc = incast(&topo(), 16);
        assert!(sc.flows.iter().all(|f| f.dst_core == 0));
        let senders: std::collections::BTreeSet<_> = sc.flows.iter().map(|f| f.src_core).collect();
        assert_eq!(senders.len(), 16);
    }

    #[test]
    fn outcast_fans_out_from_one_sender_core() {
        let sc = outcast(&topo(), 8);
        assert!(sc.flows.iter().all(|f| f.src_core == 0));
        let dsts: std::collections::BTreeSet<_> = sc.flows.iter().map(|f| f.dst_core).collect();
        assert_eq!(dsts.len(), 8);
    }

    #[test]
    fn all_to_all_is_quadratic() {
        let sc = all_to_all(&topo(), 8);
        assert_eq!(sc.flows.len(), 64);
        assert_eq!(sc.apps.len(), 128);
    }

    #[test]
    fn rpc_incast_builds_paired_flows() {
        let sc = rpc_incast(&topo(), 16, 4096, Placement::NicLocalFirst);
        assert_eq!(sc.flows.len(), 32, "request+response per client");
        // One server app plus 16 clients.
        assert_eq!(sc.apps.len(), 17);
        let servers = sc
            .apps
            .iter()
            .filter(|(h, _, a)| *h == 1 && matches!(a, AppSpec::RpcServer { .. }))
            .count();
        assert_eq!(servers, 1);
    }

    #[test]
    fn mixed_keeps_everything_on_core_zero() {
        let sc = mixed_long_short(&topo(), 4, 4096);
        assert!(sc.apps.iter().all(|(_, core, _)| *core == 0));
        assert_eq!(sc.flows.len(), 1 + 8);
        assert_eq!(sc.flows[MIXED_LONG_FLOW as usize].src_core, 0);
    }

    #[test]
    fn mixed_without_shorts_is_just_long_flow() {
        let sc = mixed_long_short(&topo(), 0, 4096);
        assert_eq!(sc.flows.len(), 1);
        assert_eq!(sc.apps.len(), 2);
    }

    #[test]
    fn open_loop_builder_shape() {
        let sc = open_loop_rpc(&topo(), 8, 4096, 10_000.0);
        assert_eq!(sc.flows.len(), 16);
        assert_eq!(sc.apps.len(), 9);
        let mean = sc.apps.iter().find_map(|(_, _, a)| match a {
            AppSpec::OpenLoopClient {
                mean_interarrival_ns,
                ..
            } => Some(*mean_interarrival_ns),
            _ => None,
        });
        assert_eq!(mean, Some(100_000), "10k rps = 100us mean gap");
    }

    #[test]
    fn fabric_incast_places_one_sender_per_host() {
        let sc = fabric_incast(&topo(), 8);
        assert_eq!(sc.flows.len(), 8);
        let hosts: std::collections::BTreeSet<_> = sc.flows.iter().map(|f| f.src_host).collect();
        assert_eq!(hosts.len(), 8, "each long flow on its own sender host");
        assert!(!hosts.contains(&1), "host 1 is the receiver");
        assert!(sc.flows.iter().all(|f| f.dst_host == 1));
        // Receive processing fans out across receiver cores.
        let dsts: std::collections::BTreeSet<_> = sc.flows.iter().map(|f| f.dst_core).collect();
        assert_eq!(dsts.len(), 8);
    }

    #[test]
    fn fabric_mixed_tenant_shares_receiver_core_zero() {
        let sc = fabric_mixed_tenant(&topo(), 3, 4, 4096);
        assert_eq!(sc.flows.len(), 3 + 8);
        // Every data byte lands on the receiver's core 0.
        assert!(sc
            .flows
            .iter()
            .filter(|f| f.dst_host == 1)
            .all(|f| f.dst_core == 0));
        let long_hosts: std::collections::BTreeSet<_> =
            sc.flows[..3].iter().map(|f| f.src_host).collect();
        assert_eq!(
            long_hosts,
            [0usize, 2, 3].into_iter().collect(),
            "long flows come from distinct tenant hosts"
        );
    }

    #[test]
    fn fabric_sender_hosts_skip_the_receiver() {
        let hosts: Vec<_> = (0..5).map(fabric_sender_host).collect();
        assert_eq!(hosts, vec![0, 2, 3, 4, 5]);
    }

    #[test]
    fn churn_builders_produce_valid_plans() {
        for cfg in [
            churn_open_loop(250_000.0),
            churn_short_rpc(100_000.0, 4096),
            churn_pool(1_000_000, 200_000.0),
        ] {
            cfg.validate().expect("builder output must validate");
        }
        assert_eq!(churn_open_loop(250_000.0).mode, ChurnMode::HandshakeOnly);
        assert_eq!(
            churn_short_rpc(1.0, 512),
            ChurnConfig {
                mode: ChurnMode::ShortRpc,
                rate_cps: 1.0,
                rpc_size: 512,
                ..ChurnConfig::default()
            }
        );
        assert!(matches!(
            churn_pool(42, 1.0).mode,
            ChurnMode::Pool { conns: 42 }
        ));
    }

    #[test]
    fn scenarios_install_cleanly() {
        use hns_stack::SimConfig;
        let t = topo();
        for sc in [
            single_flow(&t, Placement::NicLocalFirst),
            one_to_one(&t, 4),
            incast(&t, 4),
            outcast(&t, 4),
            all_to_all(&t, 3),
            rpc_incast(&t, 4, 4096, Placement::NicLocalFirst),
            mixed_long_short(&t, 2, 4096),
            open_loop_rpc(&t, 4, 4096, 50_000.0),
        ] {
            let n_flows = sc.flows.len();
            let mut w = World::new(SimConfig::default());
            sc.install(&mut w);
            assert_eq!(w.flows.len(), n_flows);
        }
    }
}
