//! Property tests for the churn workload builders: every builder must
//! emit a plan that passes `ChurnConfig::validate` for any parameters a
//! caller can express, so a sweep can never hand the engine an
//! inconsistent plan.

use hns_conn::ChurnMode;
use proptest::prelude::*;

proptest! {
    /// Open-loop handshake plans validate at any positive rate and keep
    /// the requested rate (the sweep label is derived from it).
    #[test]
    fn open_loop_builder_is_always_valid(rate in 1.0f64..10e6) {
        let cfg = hns_workload::churn_open_loop(rate);
        prop_assert!(cfg.validate().is_ok(), "{:?}", cfg.validate());
        prop_assert_eq!(cfg.mode, ChurnMode::HandshakeOnly);
        prop_assert!((cfg.rate_cps - rate).abs() < 1e-9);
        // Mean interarrival must invert the rate (Poisson scheduling).
        let ns = cfg.mean_interarrival().as_nanos() as f64;
        prop_assert!((ns - 1e9 / rate).abs() <= 1.0, "interarrival {ns}ns at {rate}cps");
    }

    /// Short-RPC plans validate for any positive rate and payload.
    #[test]
    fn short_rpc_builder_is_always_valid(
        rate in 1.0f64..10e6,
        size in 1u32..(1 << 20),
    ) {
        let cfg = hns_workload::churn_short_rpc(rate, size);
        prop_assert!(cfg.validate().is_ok(), "{:?}", cfg.validate());
        prop_assert_eq!(cfg.mode, ChurnMode::ShortRpc);
        prop_assert_eq!(cfg.rpc_size, size);
    }

    /// Pool plans validate for any non-empty population and positive
    /// churn rate.
    #[test]
    fn pool_builder_is_always_valid(
        conns in 1u32..2_000_000,
        rate in 1.0f64..10e6,
    ) {
        let cfg = hns_workload::churn_pool(conns, rate);
        prop_assert!(cfg.validate().is_ok(), "{:?}", cfg.validate());
        prop_assert_eq!(cfg.mode, ChurnMode::Pool { conns });
    }
}
