//! # hns-sched — the CPU scheduler model
//!
//! The paper's scheduling findings (§3.2: wakeup/context-switch overhead
//! grows once the link saturates and cores idle between bursts; §3.7:
//! colocating long- and short-flow applications on one core costs ~43%)
//! require a scheduler model with:
//!
//! * per-core run queues (everything in the experiments is pinned),
//! * softirq context prioritized over application threads (ksoftirqd-style
//!   processing runs before user threads get the core back),
//! * block/wake semantics — a thread blocked on an empty socket queue (or
//!   full send buffer) yields the core; the wakeup path costs cycles,
//! * context-switch detection so each switch charges the `Sched` taxonomy
//!   category.
//!
//! The scheduler is a pure mechanism: [`Scheduler::pick`] chooses what runs
//! next; the host stack executes a step of whatever was chosen and charges
//! its costs. Events and time live in the stack's event loop, keeping this
//! crate independently testable.

use std::collections::VecDeque;

/// A schedulable context on one core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Task {
    /// The softirq context (NAPI polling, GRO, TCP/IP rx processing).
    Softirq,
    /// An application thread, by host-global thread id.
    Thread(u32),
}

/// Scheduler-visible thread states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    /// Waiting (empty socket queue, full send buffer, RPC response…).
    Blocked,
    /// On a run queue.
    Runnable,
    /// Currently executing.
    Running,
}

#[derive(Debug, Default)]
struct CoreState {
    /// Runnable application threads, FIFO.
    queue: VecDeque<u32>,
    /// Softirq raised and waiting to run.
    softirq_pending: bool,
    /// What currently holds the core.
    running: Option<Task>,
    /// Last *thread* that ran (context-switch detection). Softirq runs in
    /// interrupt context borrowing the current stack — entering/leaving it
    /// is not a context switch, which is why saturated single-flow cores
    /// show little scheduling overhead despite constant softirq activity.
    last_thread: Option<u32>,
}

#[derive(Debug)]
struct ThreadInfo {
    core: u16,
    state: ThreadState,
    /// A wakeup arrived while the thread was Running: when its step ends
    /// with "blocked", it becomes runnable again instead (otherwise the
    /// wakeup — e.g. data delivered by a softirq on another core mid-step —
    /// would be lost and the thread would sleep forever).
    wake_pending: bool,
}

/// Outcome of picking the next task to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Picked {
    /// The task now running.
    pub task: Task,
    /// True if this dispatch switches away from the previously running
    /// context (charge a context-switch cost).
    pub switched: bool,
}

/// Per-host scheduler over a fixed set of cores and pinned threads.
#[derive(Debug)]
pub struct Scheduler {
    cores: Vec<CoreState>,
    threads: Vec<ThreadInfo>,
    /// Context switches observed (reporting).
    pub context_switches: u64,
    /// Thread wakeups performed (each costs wakeup cycles).
    pub wakeups: u64,
}

impl Scheduler {
    /// Scheduler for `cores` cores with no threads yet.
    pub fn new(cores: usize) -> Self {
        Scheduler {
            cores: (0..cores).map(|_| CoreState::default()).collect(),
            threads: Vec::new(),
            context_switches: 0,
            wakeups: 0,
        }
    }

    /// Register a thread pinned to `core`, initially blocked. Returns its id.
    pub fn add_thread(&mut self, core: u16) -> u32 {
        let id = self.threads.len() as u32;
        self.threads.push(ThreadInfo {
            core,
            state: ThreadState::Blocked,
            wake_pending: false,
        });
        id
    }

    /// Core a thread is pinned to.
    pub fn thread_core(&self, tid: u32) -> u16 {
        self.threads[tid as usize].core
    }

    /// Wake a blocked thread. Returns `Some(core_was_idle)` when the wake
    /// did something — the caller charges wakeup cycles, and must schedule
    /// a dispatch for the core when it was idle. Returns `None` for a
    /// redundant wake of a runnable thread. Waking a *running* thread sets
    /// `wake_pending` so the wakeup survives the thread blocking at the end
    /// of its current step.
    pub fn wake_thread(&mut self, tid: u32) -> Option<bool> {
        let t = &mut self.threads[tid as usize];
        match t.state {
            ThreadState::Runnable => None,
            ThreadState::Running => {
                if t.wake_pending {
                    None
                } else {
                    t.wake_pending = true;
                    self.wakeups += 1;
                    Some(false)
                }
            }
            ThreadState::Blocked => {
                t.state = ThreadState::Runnable;
                self.wakeups += 1;
                let core = t.core as usize;
                self.cores[core].queue.push_back(tid);
                Some(self.core_is_idle(core))
            }
        }
    }

    /// Wake a batch of threads in one call — the run-start kick wakes
    /// every app thread at once, and batch dispatch wakes whole
    /// same-tick groups. Exactly equivalent to calling
    /// [`Self::wake_thread`] once per tid in iterator order; returns the
    /// number of non-redundant wakes.
    pub fn wake_all<I>(&mut self, tids: I) -> usize
    where
        I: IntoIterator<Item = u32>,
    {
        tids.into_iter()
            .filter(|&tid| self.wake_thread(tid).is_some())
            .count()
    }

    /// Raise the softirq on `core`. Returns `true` if the core was idle.
    pub fn raise_softirq(&mut self, core: usize) -> bool {
        let c = &mut self.cores[core];
        if c.softirq_pending || c.running == Some(Task::Softirq) {
            return false;
        }
        c.softirq_pending = true;
        self.core_is_idle(core)
    }

    fn core_is_idle(&self, core: usize) -> bool {
        self.cores[core].running.is_none()
    }

    /// True if nothing runs and nothing waits on `core`.
    pub fn is_fully_idle(&self, core: usize) -> bool {
        let c = &self.cores[core];
        c.running.is_none() && !c.softirq_pending && c.queue.is_empty()
    }

    /// What currently runs on `core`.
    pub fn running(&self, core: usize) -> Option<Task> {
        self.cores[core].running
    }

    /// Pick the next task for an idle `core`: softirq first, then the
    /// thread run queue. `None` if the core stays idle. The picked task
    /// becomes `running`; the caller executes one step and then calls
    /// [`Scheduler::step_done`].
    pub fn pick(&mut self, core: usize) -> Option<Picked> {
        let c = &mut self.cores[core];
        assert!(c.running.is_none(), "pick() on a busy core");
        let task = if c.softirq_pending {
            c.softirq_pending = false;
            Task::Softirq
        } else if let Some(tid) = c.queue.pop_front() {
            self.threads[tid as usize].state = ThreadState::Running;
            Task::Thread(tid)
        } else {
            return None;
        };
        let c = &mut self.cores[core];
        c.running = Some(task);
        let switched = match task {
            Task::Softirq => false,
            Task::Thread(tid) => {
                let sw = c.last_thread != Some(tid);
                c.last_thread = Some(tid);
                sw
            }
        };
        if switched {
            self.context_switches += 1;
        }
        Some(Picked { task, switched })
    }

    /// The running task on `core` finished one step.
    ///
    /// * `still_runnable = true` — requeue it (round-robin yield, so a
    ///   pending softirq or sibling thread gets the core between steps);
    /// * `still_runnable = false` — it blocked (or the softirq completed).
    pub fn step_done(&mut self, core: usize, still_runnable: bool) {
        let c = &mut self.cores[core];
        let task = c.running.take().expect("step_done on idle core");
        match task {
            Task::Softirq => {
                if still_runnable {
                    c.softirq_pending = true;
                }
            }
            Task::Thread(tid) => {
                let t = &mut self.threads[tid as usize];
                if still_runnable || t.wake_pending {
                    t.wake_pending = false;
                    t.state = ThreadState::Runnable;
                    c.queue.push_back(tid);
                } else {
                    t.state = ThreadState::Blocked;
                }
            }
        }
    }

    /// Threads currently runnable or running on `core` (diagnostics).
    pub fn load(&self, core: usize) -> usize {
        let c = &self.cores[core];
        c.queue.len() + usize::from(matches!(c.running, Some(Task::Thread(_))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_while_running_survives_block() {
        let mut s = Scheduler::new(1);
        let a = s.add_thread(0);
        s.wake_thread(a);
        s.pick(0).unwrap();
        // Data arrives mid-step: wake the running thread.
        assert_eq!(s.wake_thread(a), Some(false));
        // The step ends deciding to block — but the pending wake wins.
        s.step_done(0, false);
        let p = s.pick(0).expect("thread must be runnable again");
        assert_eq!(p.task, Task::Thread(a));
    }

    #[test]
    fn wake_idle_core_requests_dispatch() {
        let mut s = Scheduler::new(2);
        let t = s.add_thread(0);
        assert_eq!(s.wake_thread(t), Some(true), "idle core needs a dispatch");
        assert_eq!(s.wakeups, 1);
        // Double wake is a no-op.
        assert_eq!(s.wake_thread(t), None);
        assert_eq!(s.wakeups, 1);
    }

    #[test]
    fn wake_all_matches_per_thread_wakes() {
        // Batch wake must be observationally identical to a per-tid loop:
        // same run-queue order, same wakeup count, redundant wakes skipped.
        let mut batch = Scheduler::new(2);
        let mut serial = Scheduler::new(2);
        let tids: Vec<u32> = (0..6).map(|i| batch.add_thread(i % 2)).collect();
        for i in 0..6u32 {
            serial.add_thread((i % 2) as u16);
        }
        // Pre-wake one thread so the batch hits a redundant wake.
        batch.wake_thread(tids[3]);
        serial.wake_thread(tids[3]);
        let woken = batch.wake_all(tids.iter().copied());
        let mut expect = 0;
        for &t in &tids {
            if serial.wake_thread(t).is_some() {
                expect += 1;
            }
        }
        assert_eq!(woken, expect);
        assert_eq!(batch.wakeups, serial.wakeups);
        for core in 0..2 {
            loop {
                let (a, b) = (batch.pick(core), serial.pick(core));
                match (&a, &b) {
                    (Some(x), Some(y)) => assert_eq!(x.task, y.task),
                    (None, None) => break,
                    _ => panic!("batch/serial diverged on core {core}"),
                }
                batch.step_done(core, false);
                serial.step_done(core, false);
            }
        }
    }

    #[test]
    fn softirq_preempts_queue_order() {
        let mut s = Scheduler::new(1);
        let t = s.add_thread(0);
        s.wake_thread(t);
        s.raise_softirq(0);
        // Softirq wins even though the thread was queued first.
        let p = s.pick(0).unwrap();
        assert_eq!(p.task, Task::Softirq);
        s.step_done(0, false);
        let p = s.pick(0).unwrap();
        assert_eq!(p.task, Task::Thread(t));
    }

    #[test]
    fn context_switch_detection() {
        let mut s = Scheduler::new(1);
        let a = s.add_thread(0);
        let b = s.add_thread(0);
        s.wake_thread(a);
        let p = s.pick(0).unwrap();
        assert!(p.switched, "first dispatch is a switch");
        s.step_done(0, true);
        // Same thread runs again: no switch.
        let p = s.pick(0).unwrap();
        assert_eq!(p.task, Task::Thread(a));
        assert!(!p.switched);
        s.step_done(0, true);
        // Softirq interleaves for free (interrupt context, not a switch)…
        s.raise_softirq(0);
        assert!(!s.pick(0).unwrap().switched);
        s.step_done(0, false);
        // …and resuming the same thread afterwards is also free.
        assert!(!s.pick(0).unwrap().switched);
        s.step_done(0, true);
        // A different thread IS a switch.
        s.wake_thread(b);
        // a is requeued ahead; run a (no switch), then b (switch).
        assert!(!s.pick(0).unwrap().switched);
        s.step_done(0, true);
        assert_eq!(s.pick(0).unwrap().task, Task::Thread(b));
        assert_eq!(s.context_switches, 2);
    }

    #[test]
    fn round_robin_between_threads() {
        let mut s = Scheduler::new(1);
        let a = s.add_thread(0);
        let b = s.add_thread(0);
        s.wake_thread(a);
        s.wake_thread(b);
        let mut order = Vec::new();
        for _ in 0..4 {
            let p = s.pick(0).unwrap();
            order.push(p.task);
            s.step_done(0, true);
        }
        assert_eq!(
            order,
            vec![
                Task::Thread(a),
                Task::Thread(b),
                Task::Thread(a),
                Task::Thread(b)
            ]
        );
    }

    #[test]
    fn blocking_removes_from_queue() {
        let mut s = Scheduler::new(1);
        let a = s.add_thread(0);
        s.wake_thread(a);
        s.pick(0).unwrap();
        s.step_done(0, false); // blocked
        assert!(s.pick(0).is_none());
        assert!(s.is_fully_idle(0));
        // Wake brings it back.
        assert_eq!(s.wake_thread(a), Some(true));
        assert_eq!(s.pick(0).unwrap().task, Task::Thread(a));
    }

    #[test]
    fn softirq_reraise_while_running_is_coalesced() {
        let mut s = Scheduler::new(1);
        s.raise_softirq(0);
        s.pick(0).unwrap();
        // While softirq runs, new raise is swallowed (NAPI is already
        // polling).
        assert!(!s.raise_softirq(0));
        s.step_done(0, false);
        assert!(s.is_fully_idle(0));
    }

    #[test]
    fn softirq_self_requeue() {
        let mut s = Scheduler::new(1);
        s.raise_softirq(0);
        s.pick(0).unwrap();
        s.step_done(0, true); // budget exhausted, more work pending
        assert_eq!(s.pick(0).unwrap().task, Task::Softirq);
    }

    #[test]
    fn threads_pin_to_their_core() {
        let mut s = Scheduler::new(2);
        let a = s.add_thread(1);
        assert_eq!(s.thread_core(a), 1);
        s.wake_thread(a);
        assert!(s.pick(0).is_none(), "core 0 has nothing");
        assert_eq!(s.pick(1).unwrap().task, Task::Thread(a));
    }

    #[test]
    fn load_counts_runnable_and_running() {
        let mut s = Scheduler::new(1);
        let a = s.add_thread(0);
        let b = s.add_thread(0);
        s.wake_thread(a);
        s.wake_thread(b);
        assert_eq!(s.load(0), 2);
        s.pick(0).unwrap();
        assert_eq!(s.load(0), 2, "running thread still loads the core");
        s.step_done(0, false);
        assert_eq!(s.load(0), 1);
    }

    #[test]
    #[should_panic(expected = "busy core")]
    fn double_pick_panics() {
        let mut s = Scheduler::new(1);
        s.raise_softirq(0);
        s.pick(0);
        s.pick(0);
    }
}
