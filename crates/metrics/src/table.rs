//! Plain-text table rendering for the figure benches.
//!
//! The benches print the same rows/series the paper's figures report; these
//! helpers keep the formatting consistent across all of them.

use crate::report::Report;
use crate::taxonomy::{CycleBreakdown, ALL_CATEGORIES};

/// Format a Gbps value the way the figure tables do.
pub fn format_gbps(gbps: f64) -> String {
    format!("{gbps:6.2}")
}

/// Render a CPU-breakdown table: one column per labelled breakdown, one row
/// per taxonomy category, cells showing the fraction of CPU cycles — the
/// textual equivalent of the paper's stacked-bar breakdown figures.
pub fn format_breakdown_table(columns: &[(String, CycleBreakdown)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<14}", "category"));
    for (label, _) in columns {
        out.push_str(&format!(" {label:>14}"));
    }
    out.push('\n');
    for cat in ALL_CATEGORIES {
        out.push_str(&format!("{:<14}", cat.label()));
        for (_, bd) in columns {
            out.push_str(&format!(" {:>14.3}", bd.fraction(cat)));
        }
        out.push('\n');
    }
    out
}

/// Render a series table: one row per report with throughput-per-core, total
/// throughput, utilizations and cache miss rates — the scaffolding of the
/// paper's line/bar figures.
pub fn format_series_table(reports: &[Report]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8}\n",
        "experiment", "thpt/core", "total", "snd_cores", "rcv_cores", "rx_miss", "tx_miss"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<28} {:>10.2} {:>10.2} {:>9.2} {:>9.2} {:>7.1}% {:>7.1}%\n",
            r.label,
            r.thpt_per_core_gbps,
            r.total_gbps,
            r.sender.cores_used,
            r.receiver.cores_used,
            r.receiver.cache.miss_rate() * 100.0,
            r.sender.cache.miss_rate() * 100.0,
        ));
    }
    out
}

/// Render the per-stage residency table from a traced report: one row per
/// pipeline stage with sample count and p50/p90/p99/p999 in microseconds.
/// Empty string when the report carries no trace data.
pub fn format_stage_table(report: &Report) -> String {
    if report.stage_latency.is_empty() {
        return String::new();
    }
    let us = |ns: u64| ns as f64 / 1e3;
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "stage", "samples", "p50_us", "p90_us", "p99_us", "p999_us"
    ));
    for s in &report.stage_latency {
        out.push_str(&format!(
            "{:<12} {:>10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
            s.stage,
            s.samples,
            us(s.p50_ns),
            us(s.p90_ns),
            us(s.p99_ns),
            us(s.p999_ns),
        ));
    }
    if report.trace_overflow > 0 {
        out.push_str(&format!(
            "warning: {} stamps lost to full trace rings (distributions are partial)\n",
            report.trace_overflow
        ));
    }
    out
}

/// Render the connection-lifecycle summary from a churn report: lifecycle
/// counters, handshake latency, flow-table footprint and epoll batching.
/// Empty string when the report carries no churn data.
pub fn format_conn_table(report: &Report) -> String {
    let Some(c) = &report.conn else {
        return String::new();
    };
    let mut out = String::new();
    out.push_str(&format!("{:<24} {:>12}\n", "conn metric", "value"));
    let rows: [(&str, String); 12] = [
        ("opened", c.opened.to_string()),
        ("established", c.established.to_string()),
        ("closed", c.closed.to_string()),
        ("failed", c.failed.to_string()),
        ("retransmits", c.retransmits.to_string()),
        ("rpcs", c.rpcs.to_string()),
        ("conn_rate_cps", format!("{:.0}", c.conn_rate_cps)),
        ("handshake_avg_us", format!("{:.2}", c.handshake.avg_us)),
        ("handshake_p99_us", format!("{:.2}", c.handshake.p99_us)),
        ("live_high_water", c.established_high_water.to_string()),
        ("table_capacity", c.table_capacity.to_string()),
        (
            "epoll_evts_per_wakeup",
            format!("{:.2}", c.epoll_events_per_wakeup()),
        ),
    ];
    for (label, value) in rows {
        out.push_str(&format!("{label:<24} {value:>12}\n"));
    }
    out
}

/// Render the overload/capacity summary from an overload-enabled churn
/// report: accept-queue pressure, admission outcomes, memory pinning, and
/// the RPC latency tail. Empty string when the report carries no capacity
/// data.
pub fn format_capacity_table(report: &Report) -> String {
    let Some(c) = &report.capacity else {
        return String::new();
    };
    let mut out = String::new();
    out.push_str(&format!("{:<24} {:>12}\n", "capacity metric", "value"));
    let rows: [(&str, String); 14] = [
        ("policy", c.policy.clone()),
        ("accept_depth", c.accept_depth.to_string()),
        ("accept_high_water", c.accept_high_water.to_string()),
        ("accept_overflows", c.accept_overflows.to_string()),
        ("syn_cookies", c.syn_cookies.to_string()),
        ("accept_drops", c.accept_drops.to_string()),
        ("sheds", c.sheds.to_string()),
        ("refused", c.refused.to_string()),
        ("mem_peak_bytes", c.mem_peak_bytes.to_string()),
        ("alloc_fails", c.alloc_fails.to_string()),
        ("idle_reaped", c.idle_reaped.to_string()),
        ("slow_conns", c.slow_conns.to_string()),
        ("rpc_avg_us", format!("{:.2}", c.rpc.avg_us)),
        ("rpc_p99_us", format!("{:.2}", c.rpc.p99_us)),
    ];
    for (label, value) in rows {
        out.push_str(&format!("{label:<24} {value:>12}\n"));
    }
    out
}

/// Render the streaming-telemetry summary from a monitored report: snapshot
/// cadence, goodput envelope across intervals, and the per-stage sketch
/// quantiles accumulated over the whole measurement window. Empty string
/// when the report carries no monitor data.
pub fn format_monitor_table(report: &Report) -> String {
    let Some(m) = &report.monitor else {
        return String::new();
    };
    let mut out = String::new();
    out.push_str(&format!("{:<24} {:>12}\n", "monitor metric", "value"));
    let rows: [(&str, String); 6] = [
        ("snapshots", m.snapshots.to_string()),
        ("interval_ms", format!("{:.3}", m.interval_secs * 1e3)),
        ("sketch_alpha", format!("{:.4}", m.sketch_alpha)),
        ("goodput_avg_gbps", format!("{:.3}", m.goodput_avg_gbps)),
        ("goodput_min_gbps", format!("{:.3}", m.goodput_min_gbps)),
        ("goodput_max_gbps", format!("{:.3}", m.goodput_max_gbps)),
    ];
    for (label, value) in rows {
        out.push_str(&format!("{label:<24} {value:>12}\n"));
    }
    if !m.stages.is_empty() {
        let us = |ns: u64| ns as f64 / 1e3;
        out.push_str(&format!(
            "{:<12} {:>10} {:>10} {:>10} {:>10}\n",
            "stage", "samples", "p50_us", "p99_us", "p999_us"
        ));
        for s in &m.stages {
            out.push_str(&format!(
                "{:<12} {:>10} {:>10.3} {:>10.3} {:>10.3}\n",
                s.stage,
                s.samples,
                us(s.p50_ns),
                us(s.p99_ns),
                us(s.p999_ns),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::Category;

    #[test]
    fn breakdown_table_contains_all_categories() {
        let mut bd = CycleBreakdown::new();
        bd.charge(Category::DataCopy, 50);
        bd.charge(Category::TcpIp, 50);
        let t = format_breakdown_table(&[("all-opts".into(), bd)]);
        for cat in ALL_CATEGORIES {
            assert!(t.contains(cat.label()), "missing {cat}");
        }
        assert!(t.contains("0.500"));
    }

    #[test]
    fn series_table_has_rows() {
        let r = Report {
            label: "single-flow".into(),
            thpt_per_core_gbps: 42.0,
            total_gbps: 42.0,
            ..Report::default()
        };
        let t = format_series_table(&[r]);
        assert!(t.contains("single-flow"));
        assert!(t.contains("42.00"));
    }

    #[test]
    fn gbps_formatting() {
        assert_eq!(format_gbps(42.0), " 42.00");
    }

    #[test]
    fn stage_table_rows_and_overflow_warning() {
        use crate::report::StageLatency;
        let mut r = Report::default();
        assert_eq!(
            format_stage_table(&r),
            "",
            "untraced report renders nothing"
        );
        r.stage_latency = vec![StageLatency {
            stage: "sock_queue".into(),
            samples: 42,
            mean_ns: 1500.0,
            p50_ns: 1000,
            p90_ns: 2000,
            p99_ns: 5000,
            p999_ns: 9000,
            max_ns: 12000,
        }];
        let t = format_stage_table(&r);
        assert!(t.contains("sock_queue"));
        assert!(t.contains("1.000"));
        assert!(t.contains("5.000"));
        assert!(!t.contains("warning"));
        r.trace_overflow = 3;
        assert!(format_stage_table(&r).contains("3 stamps lost"));
    }

    #[test]
    fn conn_table_renders_only_for_churn_reports() {
        use crate::report::{ConnSummary, LatencyStats};
        let mut r = Report::default();
        assert_eq!(
            format_conn_table(&r),
            "",
            "non-churn report renders nothing"
        );
        r.conn = Some(ConnSummary {
            opened: 500,
            established: 495,
            conn_rate_cps: 50_000.0,
            handshake: LatencyStats {
                avg_us: 10.0,
                p99_us: 25.0,
                samples: 495,
            },
            epoll_wakeups: 10,
            epoll_events: 40,
            ..ConnSummary::default()
        });
        let t = format_conn_table(&r);
        assert!(t.contains("opened"));
        assert!(t.contains("500"));
        assert!(t.contains("50000"));
        assert!(t.contains("4.00"), "epoll coalescing ratio");
    }

    #[test]
    fn capacity_table_renders_only_for_overload_reports() {
        use crate::report::{CapacitySummary, LatencyStats};
        let mut r = Report::default();
        assert_eq!(
            format_capacity_table(&r),
            "",
            "non-overload report renders nothing"
        );
        r.capacity = Some(CapacitySummary {
            policy: "queue".into(),
            accept_depth: 64,
            accept_high_water: 64,
            accept_overflows: 250,
            syn_cookies: 250,
            rpc: LatencyStats {
                avg_us: 75.0,
                p99_us: 640.0,
                samples: 900,
            },
            ..CapacitySummary::default()
        });
        let t = format_capacity_table(&r);
        assert!(t.contains("policy"));
        assert!(t.contains("queue"));
        assert!(t.contains("250"));
        assert!(t.contains("640.00"));
    }

    #[test]
    fn monitor_table_renders_only_for_monitored_reports() {
        use crate::report::{MonitorStage, MonitorSummary};
        let mut r = Report::default();
        assert_eq!(
            format_monitor_table(&r),
            "",
            "unmonitored report renders nothing"
        );
        r.monitor = Some(MonitorSummary {
            snapshots: 12,
            interval_secs: 0.01,
            sketch_alpha: 0.01,
            goodput_avg_gbps: 38.5,
            goodput_min_gbps: 30.0,
            goodput_max_gbps: 42.0,
            stages: vec![MonitorStage {
                stage: "sock_queue".into(),
                samples: 400,
                p50_ns: 1000,
                p99_ns: 5000,
                p999_ns: 9000,
            }],
        });
        let t = format_monitor_table(&r);
        assert!(t.contains("snapshots"));
        assert!(t.contains("12"));
        assert!(t.contains("38.500"));
        assert!(t.contains("sock_queue"));
        assert!(t.contains("5.000"), "p99 rendered in microseconds");
    }
}
