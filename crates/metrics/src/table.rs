//! Plain-text table rendering for the figure benches.
//!
//! The benches print the same rows/series the paper's figures report; these
//! helpers keep the formatting consistent across all of them.

use crate::report::Report;
use crate::taxonomy::{CycleBreakdown, ALL_CATEGORIES};

/// Format a Gbps value the way the figure tables do.
pub fn format_gbps(gbps: f64) -> String {
    format!("{gbps:6.2}")
}

/// Render a CPU-breakdown table: one column per labelled breakdown, one row
/// per taxonomy category, cells showing the fraction of CPU cycles — the
/// textual equivalent of the paper's stacked-bar breakdown figures.
pub fn format_breakdown_table(columns: &[(String, CycleBreakdown)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<14}", "category"));
    for (label, _) in columns {
        out.push_str(&format!(" {label:>14}"));
    }
    out.push('\n');
    for cat in ALL_CATEGORIES {
        out.push_str(&format!("{:<14}", cat.label()));
        for (_, bd) in columns {
            out.push_str(&format!(" {:>14.3}", bd.fraction(cat)));
        }
        out.push('\n');
    }
    out
}

/// Render a series table: one row per report with throughput-per-core, total
/// throughput, utilizations and cache miss rates — the scaffolding of the
/// paper's line/bar figures.
pub fn format_series_table(reports: &[Report]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8}\n",
        "experiment", "thpt/core", "total", "snd_cores", "rcv_cores", "rx_miss", "tx_miss"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<28} {:>10.2} {:>10.2} {:>9.2} {:>9.2} {:>7.1}% {:>7.1}%\n",
            r.label,
            r.thpt_per_core_gbps,
            r.total_gbps,
            r.sender.cores_used,
            r.receiver.cores_used,
            r.receiver.cache.miss_rate() * 100.0,
            r.sender.cache.miss_rate() * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::Category;

    #[test]
    fn breakdown_table_contains_all_categories() {
        let mut bd = CycleBreakdown::new();
        bd.charge(Category::DataCopy, 50);
        bd.charge(Category::TcpIp, 50);
        let t = format_breakdown_table(&[("all-opts".into(), bd)]);
        for cat in ALL_CATEGORIES {
            assert!(t.contains(cat.label()), "missing {cat}");
        }
        assert!(t.contains("0.500"));
    }

    #[test]
    fn series_table_has_rows() {
        let r = Report {
            label: "single-flow".into(),
            thpt_per_core_gbps: 42.0,
            total_gbps: 42.0,
            ..Report::default()
        };
        let t = format_series_table(&[r]);
        assert!(t.contains("single-flow"));
        assert!(t.contains("42.00"));
    }

    #[test]
    fn gbps_formatting() {
        assert_eq!(format_gbps(42.0), " 42.00");
    }
}
