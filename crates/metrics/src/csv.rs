//! CSV export for experiment series — feed the figure data straight into
//! a plotting pipeline.

use crate::report::Report;
use crate::taxonomy::ALL_CATEGORIES;

/// Escape a CSV field (quotes fields containing commas/quotes/newlines).
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Render a series of reports as CSV: one row per report with the
/// scalar metrics and both sides' per-category cycle fractions. When any
/// report carries lifecycle-trace data, per-stage p50/p99 residency
/// columns are appended (untraced series keep the exact legacy shape).
pub fn reports_to_csv(reports: &[Report]) -> String {
    let mut out = String::new();
    out.push_str(
        "label,window_secs,total_gbps,thpt_per_core_gbps,snd_cores,rcv_cores,\
         rx_miss_rate,tx_miss_rate,napi_copy_avg_us,napi_copy_p99_us,\
         rpc_latency_avg_us,rpc_latency_p99_us,avg_skb_bytes,wire_drops,\
         ring_drops,retransmissions,rpcs_completed,fairness",
    );
    for cat in ALL_CATEGORIES {
        out.push_str(&format!(
            ",{}",
            escape(&format!("rx_{}", cat.label().replace('/', "_")))
        ));
    }
    for cat in ALL_CATEGORIES {
        out.push_str(&format!(
            ",{}",
            escape(&format!("tx_{}", cat.label().replace('/', "_")))
        ));
    }
    // Union of stage labels across the series, first-appearance order
    // (reports follow pipeline order, so the union does too).
    let mut stages: Vec<&str> = Vec::new();
    for r in reports {
        for s in &r.stage_latency {
            if !stages.contains(&s.stage.as_str()) {
                stages.push(&s.stage);
            }
        }
    }
    // Stage labels come from the trace pipeline but are still data: escape
    // the assembled column names so a label containing a comma (or quote)
    // cannot shear the header.
    for s in &stages {
        out.push_str(&format!(
            ",{},{}",
            escape(&format!("{s}_p50_ns")),
            escape(&format!("{s}_p99_ns"))
        ));
    }
    if !stages.is_empty() {
        out.push_str(",trace_overflow");
    }
    // Churn columns only when some report carries a connection summary
    // (non-churn series keep the exact legacy shape, like tracing).
    let churn = reports.iter().any(|r| r.conn.is_some());
    if churn {
        out.push_str(
            ",conn_opened,conn_established,conn_closed,conn_failed,\
             conn_retransmits,conn_rate_cps,handshake_avg_us,handshake_p99_us,\
             conn_live_hw,conn_table_capacity,epoll_evts_per_wakeup",
        );
    }
    // Capacity columns only when some report ran the overload model.
    let overload = reports.iter().any(|r| r.capacity.is_some());
    if overload {
        out.push_str(
            ",policy,accept_hw,accept_overflows,syn_cookies,accept_drops,\
             sheds,refused,mem_peak_bytes,alloc_fails,idle_reaped,slow_conns,\
             conn_rpc_avg_us,conn_rpc_p99_us",
        );
    }
    // Monitor columns only when some report ran with streaming telemetry.
    let monitored = reports.iter().any(|r| r.monitor.is_some());
    if monitored {
        out.push_str(
            ",mon_snapshots,mon_interval_secs,mon_goodput_avg_gbps,\
             mon_goodput_min_gbps,mon_goodput_max_gbps",
        );
    }
    out.push('\n');

    for r in reports {
        out.push_str(&format!(
            "{},{:.6},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.2},{:.2},{:.2},{:.2},{:.1},{},{},{},{},{:.4}",
            escape(&r.label),
            r.window_secs,
            r.total_gbps,
            r.thpt_per_core_gbps,
            r.sender.cores_used,
            r.receiver.cores_used,
            r.receiver.cache.miss_rate(),
            r.sender.cache.miss_rate(),
            r.napi_to_copy.avg_us,
            r.napi_to_copy.p99_us,
            r.rpc_latency.avg_us,
            r.rpc_latency.p99_us,
            r.avg_skb_bytes,
            r.wire_drops,
            r.ring_drops,
            r.retransmissions,
            r.rpcs_completed,
            r.fairness_index(),
        ));
        for cat in ALL_CATEGORIES {
            out.push_str(&format!(",{:.4}", r.receiver.breakdown.fraction(cat)));
        }
        for cat in ALL_CATEGORIES {
            out.push_str(&format!(",{:.4}", r.sender.breakdown.fraction(cat)));
        }
        for s in &stages {
            match r.stage_latency.iter().find(|l| l.stage == *s) {
                Some(l) => out.push_str(&format!(",{},{}", l.p50_ns, l.p99_ns)),
                None => out.push_str(",,"),
            }
        }
        if !stages.is_empty() {
            out.push_str(&format!(",{}", r.trace_overflow));
        }
        if churn {
            match &r.conn {
                Some(c) => out.push_str(&format!(
                    ",{},{},{},{},{},{:.1},{:.2},{:.2},{},{},{:.2}",
                    c.opened,
                    c.established,
                    c.closed,
                    c.failed,
                    c.retransmits,
                    c.conn_rate_cps,
                    c.handshake.avg_us,
                    c.handshake.p99_us,
                    c.established_high_water,
                    c.table_capacity,
                    c.epoll_events_per_wakeup(),
                )),
                None => out.push_str(",,,,,,,,,,,"),
            }
        }
        if overload {
            match &r.capacity {
                Some(c) => out.push_str(&format!(
                    ",{},{},{},{},{},{},{},{},{},{},{},{:.2},{:.2}",
                    escape(&c.policy),
                    c.accept_high_water,
                    c.accept_overflows,
                    c.syn_cookies,
                    c.accept_drops,
                    c.sheds,
                    c.refused,
                    c.mem_peak_bytes,
                    c.alloc_fails,
                    c.idle_reaped,
                    c.slow_conns,
                    c.rpc.avg_us,
                    c.rpc.p99_us,
                )),
                None => out.push_str(",,,,,,,,,,,,,"),
            }
        }
        if monitored {
            match &r.monitor {
                Some(m) => out.push_str(&format!(
                    ",{},{:.6},{:.4},{:.4},{:.4}",
                    m.snapshots,
                    m.interval_secs,
                    m.goodput_avg_gbps,
                    m.goodput_min_gbps,
                    m.goodput_max_gbps,
                )),
                None => out.push_str(",,,,,"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::Category;

    #[test]
    fn header_and_rows_align() {
        let mut r = Report {
            label: "unit".into(),
            window_secs: 0.03,
            total_gbps: 41.0,
            ..Report::default()
        };
        r.receiver.breakdown.charge(Category::DataCopy, 10);
        let csv = reports_to_csv(&[r]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        let header_cols = lines[0].split(',').count();
        let row_cols = lines[1].split(',').count();
        assert_eq!(header_cols, row_cols, "header/row column mismatch");
        assert!(lines[1].starts_with("unit,"));
    }

    #[test]
    fn labels_with_commas_are_quoted() {
        let r = Report {
            label: "a,b".into(),
            ..Report::default()
        };
        let csv = reports_to_csv(&[r]);
        assert!(csv.contains("\"a,b\""));
        // Column count still aligns despite the comma.
        let lines: Vec<&str> = csv.lines().collect();
        // Quoted commas must not split: count via a tiny state machine.
        let mut cols = 1;
        let mut quoted = false;
        for ch in lines[1].chars() {
            match ch {
                '"' => quoted = !quoted,
                ',' if !quoted => cols += 1,
                _ => {}
            }
        }
        assert_eq!(cols, lines[0].split(',').count());
    }

    #[test]
    fn empty_series_is_header_only() {
        let csv = reports_to_csv(&[]);
        assert_eq!(csv.lines().count(), 1);
    }

    #[test]
    fn churn_series_appends_conn_columns() {
        use crate::report::ConnSummary;
        let plain = Report {
            label: "plain".into(),
            ..Report::default()
        };
        let legacy_header = reports_to_csv(std::slice::from_ref(&plain))
            .lines()
            .next()
            .unwrap()
            .to_string();
        let churn = Report {
            label: "churn".into(),
            conn: Some(ConnSummary {
                opened: 100,
                established: 99,
                conn_rate_cps: 1000.0,
                ..ConnSummary::default()
            }),
            ..Report::default()
        };
        let csv = reports_to_csv(&[churn, plain]);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with(&legacy_header));
        assert!(lines[0].contains(",conn_opened,"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header/churn-row column mismatch"
        );
        assert_eq!(
            lines[0].split(',').count(),
            lines[2].split(',').count(),
            "header/plain-row column mismatch"
        );
        assert!(
            lines[2].ends_with(",,,,,,,,,,,"),
            "non-churn row gets empty cells"
        );
    }

    #[test]
    fn overload_series_appends_capacity_columns() {
        use crate::report::{CapacitySummary, ConnSummary};
        let churn_only = Report {
            label: "plain-churn".into(),
            conn: Some(ConnSummary::default()),
            ..Report::default()
        };
        let churn_header = reports_to_csv(std::slice::from_ref(&churn_only))
            .lines()
            .next()
            .unwrap()
            .to_string();
        let overload = Report {
            label: "overload".into(),
            conn: Some(ConnSummary::default()),
            capacity: Some(CapacitySummary {
                policy: "shed".into(),
                accept_high_water: 64,
                sheds: 42,
                refused: 42,
                ..CapacitySummary::default()
            }),
            ..Report::default()
        };
        let csv = reports_to_csv(&[overload, churn_only]);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(
            lines[0].starts_with(&churn_header),
            "churn columns keep their positions"
        );
        assert!(lines[0].contains(",policy,accept_hw,"));
        assert!(lines[1].contains(",shed,"));
        for row in &lines[1..] {
            assert_eq!(
                lines[0].split(',').count(),
                row.split(',').count(),
                "header/row column mismatch"
            );
        }
        assert!(
            lines[2].ends_with(",,,,,,,,,,,,,"),
            "non-overload row gets empty capacity cells"
        );
    }

    #[test]
    fn monitored_series_appends_monitor_columns() {
        use crate::report::MonitorSummary;
        let plain = Report {
            label: "plain".into(),
            ..Report::default()
        };
        let legacy_header = reports_to_csv(std::slice::from_ref(&plain))
            .lines()
            .next()
            .unwrap()
            .to_string();
        let monitored = Report {
            label: "monitored".into(),
            monitor: Some(MonitorSummary {
                snapshots: 10,
                interval_secs: 0.01,
                sketch_alpha: 0.01,
                goodput_avg_gbps: 40.0,
                goodput_min_gbps: 35.0,
                goodput_max_gbps: 45.0,
                stages: Vec::new(),
            }),
            ..Report::default()
        };
        let csv = reports_to_csv(&[monitored, plain.clone()]);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(
            lines[0].starts_with(&legacy_header),
            "legacy columns keep their positions"
        );
        assert!(lines[0].ends_with(
            ",mon_snapshots,mon_interval_secs,mon_goodput_avg_gbps,\
             mon_goodput_min_gbps,mon_goodput_max_gbps"
        ));
        for row in &lines[1..] {
            assert_eq!(
                lines[0].split(',').count(),
                row.split(',').count(),
                "header/row column mismatch"
            );
        }
        assert!(
            lines[2].ends_with(",,,,,"),
            "unmonitored row gets empty monitor cells"
        );
        // Unmonitored-only series keeps the exact legacy header.
        assert_eq!(
            reports_to_csv(std::slice::from_ref(&plain))
                .lines()
                .next()
                .unwrap(),
            legacy_header
        );
    }

    #[test]
    fn stage_labels_with_commas_are_quoted_in_header() {
        use crate::report::StageLatency;
        let traced = Report {
            label: "on".into(),
            stage_latency: vec![StageLatency {
                stage: "weird,stage".into(),
                samples: 1,
                mean_ns: 10.0,
                p50_ns: 10,
                p90_ns: 10,
                p99_ns: 10,
                p999_ns: 10,
                max_ns: 10,
            }],
            ..Report::default()
        };
        let csv = reports_to_csv(&[traced]);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].contains("\"weird,stage_p50_ns\""));
        assert!(lines[0].contains("\"weird,stage_p99_ns\""));
        // Quote-aware column count still aligns between header and row.
        let count = |line: &str| {
            let (mut cols, mut quoted) = (1, false);
            for ch in line.chars() {
                match ch {
                    '"' => quoted = !quoted,
                    ',' if !quoted => cols += 1,
                    _ => {}
                }
            }
            cols
        };
        assert_eq!(count(lines[0]), count(lines[1]));
    }

    #[test]
    fn traced_series_appends_stage_columns() {
        use crate::report::StageLatency;
        let untraced = Report {
            label: "off".into(),
            ..Report::default()
        };
        let legacy_header = reports_to_csv(std::slice::from_ref(&untraced))
            .lines()
            .next()
            .unwrap()
            .to_string();

        let traced = Report {
            label: "on".into(),
            stage_latency: vec![StageLatency {
                stage: "wire".into(),
                samples: 10,
                mean_ns: 100.0,
                p50_ns: 90,
                p90_ns: 150,
                p99_ns: 200,
                p999_ns: 250,
                max_ns: 300,
            }],
            trace_overflow: 1,
            ..Report::default()
        };
        let csv = reports_to_csv(&[traced, untraced]);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(
            lines[0].starts_with(&legacy_header),
            "legacy columns keep their positions"
        );
        assert!(lines[0].ends_with(",wire_p50_ns,wire_p99_ns,trace_overflow"));
        assert!(lines[1].ends_with(",90,200,1"));
        assert!(
            lines[2].ends_with(",,,0"),
            "untraced row gets empty stage cells"
        );
        // Untraced-only series keeps the exact legacy header.
        assert_eq!(
            reports_to_csv(&[Report::default()]).lines().next().unwrap(),
            legacy_header
        );
    }
}
