//! CSV export for experiment series — feed the figure data straight into
//! a plotting pipeline.

use crate::report::Report;
use crate::taxonomy::ALL_CATEGORIES;

/// Escape a CSV field (quotes fields containing commas/quotes/newlines).
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Render a series of reports as CSV: one row per report with the
/// scalar metrics and both sides' per-category cycle fractions.
pub fn reports_to_csv(reports: &[Report]) -> String {
    let mut out = String::new();
    out.push_str(
        "label,window_secs,total_gbps,thpt_per_core_gbps,snd_cores,rcv_cores,\
         rx_miss_rate,tx_miss_rate,napi_copy_avg_us,napi_copy_p99_us,\
         rpc_latency_avg_us,rpc_latency_p99_us,avg_skb_bytes,wire_drops,\
         ring_drops,retransmissions,rpcs_completed,fairness",
    );
    for cat in ALL_CATEGORIES {
        out.push_str(&format!(",rx_{}", cat.label().replace('/', "_")));
    }
    for cat in ALL_CATEGORIES {
        out.push_str(&format!(",tx_{}", cat.label().replace('/', "_")));
    }
    out.push('\n');

    for r in reports {
        out.push_str(&format!(
            "{},{:.6},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.2},{:.2},{:.2},{:.2},{:.1},{},{},{},{},{:.4}",
            escape(&r.label),
            r.window_secs,
            r.total_gbps,
            r.thpt_per_core_gbps,
            r.sender.cores_used,
            r.receiver.cores_used,
            r.receiver.cache.miss_rate(),
            r.sender.cache.miss_rate(),
            r.napi_to_copy.avg_us,
            r.napi_to_copy.p99_us,
            r.rpc_latency.avg_us,
            r.rpc_latency.p99_us,
            r.avg_skb_bytes,
            r.wire_drops,
            r.ring_drops,
            r.retransmissions,
            r.rpcs_completed,
            r.fairness_index(),
        ));
        for cat in ALL_CATEGORIES {
            out.push_str(&format!(",{:.4}", r.receiver.breakdown.fraction(cat)));
        }
        for cat in ALL_CATEGORIES {
            out.push_str(&format!(",{:.4}", r.sender.breakdown.fraction(cat)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::Category;

    #[test]
    fn header_and_rows_align() {
        let mut r = Report {
            label: "unit".into(),
            window_secs: 0.03,
            total_gbps: 41.0,
            ..Report::default()
        };
        r.receiver.breakdown.charge(Category::DataCopy, 10);
        let csv = reports_to_csv(&[r]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        let header_cols = lines[0].split(',').count();
        let row_cols = lines[1].split(',').count();
        assert_eq!(header_cols, row_cols, "header/row column mismatch");
        assert!(lines[1].starts_with("unit,"));
    }

    #[test]
    fn labels_with_commas_are_quoted() {
        let r = Report {
            label: "a,b".into(),
            ..Report::default()
        };
        let csv = reports_to_csv(&[r]);
        assert!(csv.contains("\"a,b\""));
        // Column count still aligns despite the comma.
        let lines: Vec<&str> = csv.lines().collect();
        // Quoted commas must not split: count via a tiny state machine.
        let mut cols = 1;
        let mut quoted = false;
        for ch in lines[1].chars() {
            match ch {
                '"' => quoted = !quoted,
                ',' if !quoted => cols += 1,
                _ => {}
            }
        }
        assert_eq!(cols, lines[0].split(',').count());
    }

    #[test]
    fn empty_series_is_header_only() {
        let csv = reports_to_csv(&[]);
        assert_eq!(csv.lines().count(), 1);
    }
}
