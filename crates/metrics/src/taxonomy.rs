//! CPU usage taxonomy — paper Table 1.
//!
//! Every cycle a simulated core spends is charged to exactly one of these
//! eight categories. The mapping follows the paper:
//!
//! | Category | Description (from Table 1) |
//! |---|---|
//! | Data copy | From user space to kernel space, and vice versa |
//! | TCP/IP | All packet processing at TCP/IP layers |
//! | Netdevice subsystem | Netdevice and NIC driver operations (NAPI polling, GSO/GRO, qdisc, …) |
//! | skb management | Functions to build, split and release skbs |
//! | Memory | skb de-/allocation and page-pool related operations |
//! | Lock/unlock | Lock-related operations (e.g. spin locks) |
//! | Scheduling | Scheduling / context switching among threads |
//! | Etc | Remaining functions (e.g. IRQ handling) |

use crate::json::{obj, JsonError, Value};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut};

/// One of the eight CPU-cycle categories of the paper's Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Category {
    /// Payload copies between user space and kernel space.
    DataCopy,
    /// TCP/IP protocol processing (including ACK generation/processing).
    TcpIp,
    /// Netdevice subsystem: NAPI polling, GSO/GRO, qdisc, driver Tx/Rx.
    NetDevice,
    /// Building, splitting, merging and releasing skbs.
    SkbMgmt,
    /// Memory management: skb/page allocation, page-pool, IOMMU map/unmap.
    Memory,
    /// Socket and other lock acquire/release, including contention spins.
    Lock,
    /// Thread scheduling, wakeups, and context switching.
    Sched,
    /// Everything else: IRQ handling, timers, miscellaneous.
    Etc,
}

/// All categories in the display order the paper uses.
pub const ALL_CATEGORIES: [Category; 8] = [
    Category::DataCopy,
    Category::TcpIp,
    Category::NetDevice,
    Category::SkbMgmt,
    Category::Memory,
    Category::Lock,
    Category::Sched,
    Category::Etc,
];

impl Category {
    /// Stable dense index (0..8) for array storage.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Category::DataCopy => 0,
            Category::TcpIp => 1,
            Category::NetDevice => 2,
            Category::SkbMgmt => 3,
            Category::Memory => 4,
            Category::Lock => 5,
            Category::Sched => 6,
            Category::Etc => 7,
        }
    }

    /// Short label used in figure tables.
    pub const fn label(self) -> &'static str {
        match self {
            Category::DataCopy => "data_copy",
            Category::TcpIp => "tcp/ip",
            Category::NetDevice => "netdevice",
            Category::SkbMgmt => "skb_mgmt",
            Category::Memory => "memory",
            Category::Lock => "lock/unlock",
            Category::Sched => "scheduling",
            Category::Etc => "etc",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cycles charged per category. The fundamental profiling datum of the
/// reproduction: the paper's Figs. 3c/3d/5b/5c/6b/7b/8b/9c/9d/10b/11b/12b/
/// 12c/13b/13c are all rendered from one of these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    cycles: [u64; 8],
}

impl CycleBreakdown {
    /// All-zero breakdown.
    pub const fn new() -> Self {
        CycleBreakdown { cycles: [0; 8] }
    }

    /// Charge `cycles` to `cat`.
    #[inline]
    pub fn charge(&mut self, cat: Category, cycles: u64) {
        self.cycles[cat.index()] += cycles;
    }

    /// Total cycles across all categories.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Fraction of total cycles in `cat` (0 if empty).
    pub fn fraction(&self, cat: Category) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.cycles[cat.index()] as f64 / total as f64
        }
    }

    /// All fractions in [`ALL_CATEGORIES`] order.
    pub fn fractions(&self) -> [f64; 8] {
        let total = self.total();
        let mut out = [0.0; 8];
        if total > 0 {
            for (i, &c) in self.cycles.iter().enumerate() {
                out[i] = c as f64 / total as f64;
            }
        }
        out
    }

    /// The category with the most cycles (ties broken by display order;
    /// `None` if empty).
    pub fn dominant(&self) -> Option<Category> {
        if self.total() == 0 {
            return None;
        }
        ALL_CATEGORIES
            .into_iter()
            .max_by_key(|c| self.cycles[c.index()])
    }

    /// Reset all counters (end of warmup).
    pub fn reset(&mut self) {
        self.cycles = [0; 8];
    }

    /// Iterate `(category, cycles)` in display order.
    pub fn iter(&self) -> impl Iterator<Item = (Category, u64)> + '_ {
        ALL_CATEGORIES
            .into_iter()
            .map(|c| (c, self.cycles[c.index()]))
    }

    pub(crate) fn to_value(self) -> Value {
        obj(vec![(
            "cycles",
            Value::Arr(self.cycles.iter().map(|&c| Value::UInt(c)).collect()),
        )])
    }

    pub(crate) fn from_value(v: &Value) -> Result<CycleBreakdown, JsonError> {
        let arr = v.get("cycles")?.as_arr()?;
        if arr.len() != 8 {
            return Err(JsonError {
                message: format!("cycles array has {} entries, expected 8", arr.len()),
            });
        }
        let mut cycles = [0u64; 8];
        for (slot, item) in cycles.iter_mut().zip(arr) {
            *slot = item.as_u64()?;
        }
        Ok(CycleBreakdown { cycles })
    }
}

impl Index<Category> for CycleBreakdown {
    type Output = u64;
    fn index(&self, cat: Category) -> &u64 {
        &self.cycles[cat.index()]
    }
}

impl IndexMut<Category> for CycleBreakdown {
    fn index_mut(&mut self, cat: Category) -> &mut u64 {
        &mut self.cycles[cat.index()]
    }
}

impl Add for CycleBreakdown {
    type Output = CycleBreakdown;
    fn add(mut self, rhs: CycleBreakdown) -> CycleBreakdown {
        self += rhs;
        self
    }
}

impl AddAssign for CycleBreakdown {
    fn add_assign(&mut self, rhs: CycleBreakdown) {
        for i in 0..8 {
            self.cycles[i] += rhs.cycles[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 8];
        for c in ALL_CATEGORIES {
            assert!(!seen[c.index()], "duplicate index for {c}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn charge_and_total() {
        let mut b = CycleBreakdown::new();
        b.charge(Category::DataCopy, 100);
        b.charge(Category::TcpIp, 50);
        b.charge(Category::DataCopy, 25);
        assert_eq!(b.total(), 175);
        assert_eq!(b[Category::DataCopy], 125);
        assert_eq!(b[Category::TcpIp], 50);
        assert_eq!(b[Category::Etc], 0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut b = CycleBreakdown::new();
        for (i, c) in ALL_CATEGORIES.into_iter().enumerate() {
            b.charge(c, (i as u64 + 1) * 10);
        }
        let s: f64 = b.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fractions_are_zero() {
        let b = CycleBreakdown::new();
        assert_eq!(b.fraction(Category::DataCopy), 0.0);
        assert_eq!(b.dominant(), None);
    }

    #[test]
    fn dominant_category() {
        let mut b = CycleBreakdown::new();
        b.charge(Category::Sched, 10);
        b.charge(Category::DataCopy, 100);
        assert_eq!(b.dominant(), Some(Category::DataCopy));
    }

    #[test]
    fn addition_merges() {
        let mut a = CycleBreakdown::new();
        a.charge(Category::Lock, 5);
        let mut b = CycleBreakdown::new();
        b.charge(Category::Lock, 7);
        b.charge(Category::Memory, 3);
        let c = a + b;
        assert_eq!(c[Category::Lock], 12);
        assert_eq!(c[Category::Memory], 3);
        assert_eq!(c.total(), 15);
    }

    #[test]
    fn json_round_trip() {
        let mut b = CycleBreakdown::new();
        b.charge(Category::NetDevice, 42);
        let back = CycleBreakdown::from_value(&b.to_value()).unwrap();
        assert_eq!(b, back);
    }
}
