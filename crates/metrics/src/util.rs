//! Per-core CPU utilization accounting.
//!
//! The paper measures "total CPU utilization across all cores" with sysstat
//! and defines *throughput-per-core* as total throughput divided by total
//! CPU utilization (in units of cores) at the bottleneck side. The simulator
//! can account busy time exactly: every dispatched work item adds its busy
//! span to the owning core's [`CoreUsage`].

use hns_sim::{Duration, SimTime};

/// Busy-time accounting for one simulated core.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreUsage {
    busy_ns: u64,
    /// Start of the measurement window (busy time before this is excluded).
    window_start_ns: u64,
}

impl CoreUsage {
    /// New accounting starting at t = 0.
    pub fn new() -> Self {
        CoreUsage::default()
    }

    /// Record a busy span.
    #[inline]
    pub fn add_busy(&mut self, span: Duration) {
        self.busy_ns += span.as_nanos();
    }

    /// Busy nanoseconds inside the measurement window.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_ns)
    }

    /// Utilization in `[0, 1]` over the window ending at `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let window = now.as_nanos().saturating_sub(self.window_start_ns);
        if window == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / window as f64).min(1.0)
        }
    }

    /// Begin the measurement window at `now`, discarding earlier busy time
    /// (warmup exclusion).
    pub fn start_window(&mut self, now: SimTime) {
        self.busy_ns = 0;
        self.window_start_ns = now.as_nanos();
    }
}

/// Aggregate utilization over a set of cores: the "cores' worth of CPU"
/// consumed, e.g. `3.75` means 3.75 fully-busy cores (matches the paper's
/// "receiver-side CPU utilizations for x = 1, 8, 16, 24 are 1, 3.75, 5.21,
/// 6.58 cores").
pub fn total_cores_used(cores: &[CoreUsage], now: SimTime) -> f64 {
    cores.iter().map(|c| c.utilization(now)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_basic() {
        let mut u = CoreUsage::new();
        u.add_busy(Duration::from_millis(50));
        let now = SimTime::from_nanos(100_000_000);
        assert!((u.utilization(now) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn window_reset_excludes_warmup() {
        let mut u = CoreUsage::new();
        u.add_busy(Duration::from_millis(10));
        u.start_window(SimTime::from_nanos(10_000_000));
        u.add_busy(Duration::from_millis(5));
        let now = SimTime::from_nanos(20_000_000);
        assert!((u.utilization(now) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn utilization_clamped_to_one() {
        let mut u = CoreUsage::new();
        u.add_busy(Duration::from_millis(200));
        assert_eq!(u.utilization(SimTime::from_nanos(100_000_000)), 1.0);
    }

    #[test]
    fn zero_window_is_zero() {
        let u = CoreUsage::new();
        assert_eq!(u.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn aggregate_cores() {
        let now = SimTime::from_nanos(100);
        let mut a = CoreUsage::new();
        a.add_busy(Duration::from_nanos(100));
        let mut b = CoreUsage::new();
        b.add_busy(Duration::from_nanos(50));
        assert!((total_cores_used(&[a, b], now) - 1.5).abs() < 1e-9);
    }
}
