//! Experiment report: the measurement output of one simulated scenario.
//!
//! Every figure bench runs one or more experiments and renders the resulting
//! [`Report`]s. Reports serialize to JSON so EXPERIMENTS.md entries can be
//! regenerated mechanically.

use crate::drops::DropStats;
use crate::json::{self, JsonError, Value};
use crate::taxonomy::CycleBreakdown;

/// Cache behaviour observed during receive-side (or send-side) data copy.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Bytes copied that were resident in the DCA/L3 cache.
    pub hit_bytes: u64,
    /// Bytes copied that had to be fetched from DRAM (local or remote).
    pub miss_bytes: u64,
}

impl CacheStats {
    /// Cache miss rate in `[0, 1]` (0 if no copies happened).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hit_bytes + self.miss_bytes;
        if total == 0 {
            0.0
        } else {
            self.miss_bytes as f64 / total as f64
        }
    }

    /// Merge another sample set into this one.
    pub fn merge(&mut self, other: CacheStats) {
        self.hit_bytes += other.hit_bytes;
        self.miss_bytes += other.miss_bytes;
    }

    fn to_value(self) -> Value {
        json::obj(vec![
            ("hit_bytes", Value::UInt(self.hit_bytes)),
            ("miss_bytes", Value::UInt(self.miss_bytes)),
        ])
    }

    fn from_value(v: &Value) -> Result<CacheStats, JsonError> {
        Ok(CacheStats {
            hit_bytes: v.get("hit_bytes")?.as_u64()?,
            miss_bytes: v.get("miss_bytes")?.as_u64()?,
        })
    }
}

/// Latency distribution summary in microseconds (paper Fig. 3f reports the
/// NAPI→start-of-data-copy delay).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Mean latency.
    pub avg_us: f64,
    /// 99th-percentile latency.
    pub p99_us: f64,
    /// Number of samples.
    pub samples: u64,
}

impl LatencyStats {
    fn to_value(self) -> Value {
        json::obj(vec![
            ("avg_us", Value::Num(self.avg_us)),
            ("p99_us", Value::Num(self.p99_us)),
            ("samples", Value::UInt(self.samples)),
        ])
    }

    fn from_value(v: &Value) -> Result<LatencyStats, JsonError> {
        Ok(LatencyStats {
            avg_us: v.get("avg_us")?.as_f64()?,
            p99_us: v.get("p99_us")?.as_f64()?,
            samples: v.get("samples")?.as_u64()?,
        })
    }
}

/// Residency summary for one pipeline stage, produced by the per-skb
/// lifecycle tracer (`hns-trace`). Times are nanoseconds a packet spent
/// *in* the stage (stamp to next stamp); the synthetic `end_to_end` row
/// covers the whole app-write→recv-copy path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageLatency {
    /// Stage label (`tcp_tx`, `wire`, …, or `end_to_end`).
    pub stage: String,
    /// Number of residency samples.
    pub samples: u64,
    /// Mean residency in nanoseconds.
    pub mean_ns: f64,
    /// Median residency.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Maximum observed residency.
    pub max_ns: u64,
}

impl StageLatency {
    fn to_value(&self) -> Value {
        json::obj(vec![
            ("stage", Value::Str(self.stage.clone())),
            ("samples", Value::UInt(self.samples)),
            ("mean_ns", Value::Num(self.mean_ns)),
            ("p50_ns", Value::UInt(self.p50_ns)),
            ("p90_ns", Value::UInt(self.p90_ns)),
            ("p99_ns", Value::UInt(self.p99_ns)),
            ("p999_ns", Value::UInt(self.p999_ns)),
            ("max_ns", Value::UInt(self.max_ns)),
        ])
    }

    fn from_value(v: &Value) -> Result<StageLatency, JsonError> {
        Ok(StageLatency {
            stage: v.get("stage")?.as_str()?.to_string(),
            samples: v.get("samples")?.as_u64()?,
            mean_ns: v.get("mean_ns")?.as_f64()?,
            p50_ns: v.get("p50_ns")?.as_u64()?,
            p90_ns: v.get("p90_ns")?.as_u64()?,
            p99_ns: v.get("p99_ns")?.as_u64()?,
            p999_ns: v.get("p999_ns")?.as_u64()?,
            max_ns: v.get("max_ns")?.as_u64()?,
        })
    }
}

/// Connection-lifecycle summary from a churn run (`hns-conn`): how many
/// connections moved through each lifecycle stage in the measurement
/// window, what the handshake cost, and how flat the flow table stayed.
/// Present only when the run had a churn workload — non-churn reports
/// keep the exact pre-churn JSON shape.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ConnSummary {
    /// Connections opened (SYN sent) in the window.
    pub opened: u64,
    /// Connections that completed the three-way handshake.
    pub established: u64,
    /// Connections fully closed (FIN exchange done and TIME_WAIT reaped).
    pub closed: u64,
    /// Connections aborted after exhausting handshake retries.
    pub failed: u64,
    /// Lifecycle-segment retransmissions (SYN, request, FIN resends).
    pub retransmits: u64,
    /// Short-RPC exchanges completed over churned connections.
    pub rpcs: u64,
    /// Frames that arrived for an already-torn-down connection (late
    /// retransmits racing teardown) and were dropped at lookup.
    pub stale_frames: u64,
    /// Achieved connection-establishment rate (connections per second).
    pub conn_rate_cps: f64,
    /// Client-observed handshake latency (SYN sent → SYN-ACK processed),
    /// reported in microseconds like the other latency stats.
    pub handshake: LatencyStats,
    /// Peak concurrent live connections in the flow table.
    pub established_high_water: u64,
    /// Peak TIME_WAIT ring occupancy.
    pub time_wait_high_water: u64,
    /// Flow-table slot capacity at end of run. Flat-memory churn keeps
    /// this near the concurrency high-water mark, not the open count.
    pub table_capacity: u64,
    /// Installs that reused a freed slot instead of growing the table.
    pub table_slot_reuse: u64,
    /// Epoll wakeups charged (first ready event of each poll batch).
    pub epoll_wakeups: u64,
    /// Ready events delivered across all wakeups.
    pub epoll_events: u64,
}

impl ConnSummary {
    /// Mean ready events coalesced per epoll wakeup.
    pub fn epoll_events_per_wakeup(&self) -> f64 {
        if self.epoll_wakeups == 0 {
            0.0
        } else {
            self.epoll_events as f64 / self.epoll_wakeups as f64
        }
    }

    fn to_value(self) -> Value {
        json::obj(vec![
            ("opened", Value::UInt(self.opened)),
            ("established", Value::UInt(self.established)),
            ("closed", Value::UInt(self.closed)),
            ("failed", Value::UInt(self.failed)),
            ("retransmits", Value::UInt(self.retransmits)),
            ("rpcs", Value::UInt(self.rpcs)),
            ("stale_frames", Value::UInt(self.stale_frames)),
            ("conn_rate_cps", Value::Num(self.conn_rate_cps)),
            ("handshake", self.handshake.to_value()),
            (
                "established_high_water",
                Value::UInt(self.established_high_water),
            ),
            (
                "time_wait_high_water",
                Value::UInt(self.time_wait_high_water),
            ),
            ("table_capacity", Value::UInt(self.table_capacity)),
            ("table_slot_reuse", Value::UInt(self.table_slot_reuse)),
            ("epoll_wakeups", Value::UInt(self.epoll_wakeups)),
            ("epoll_events", Value::UInt(self.epoll_events)),
        ])
    }

    fn from_value(v: &Value) -> Result<ConnSummary, JsonError> {
        Ok(ConnSummary {
            opened: v.get("opened")?.as_u64()?,
            established: v.get("established")?.as_u64()?,
            closed: v.get("closed")?.as_u64()?,
            failed: v.get("failed")?.as_u64()?,
            retransmits: v.get("retransmits")?.as_u64()?,
            rpcs: v.get("rpcs")?.as_u64()?,
            stale_frames: v.get("stale_frames")?.as_u64()?,
            conn_rate_cps: v.get("conn_rate_cps")?.as_f64()?,
            handshake: LatencyStats::from_value(v.get("handshake")?)?,
            established_high_water: v.get("established_high_water")?.as_u64()?,
            time_wait_high_water: v.get("time_wait_high_water")?.as_u64()?,
            table_capacity: v.get("table_capacity")?.as_u64()?,
            table_slot_reuse: v.get("table_slot_reuse")?.as_u64()?,
            epoll_wakeups: v.get("epoll_wakeups")?.as_u64()?,
            epoll_events: v.get("epoll_events")?.as_u64()?,
        })
    }
}

/// Overload/capacity summary from a churn run with the overload model
/// enabled: accept-queue pressure, admission-policy outcomes, connection
/// memory, slow-client reaping, and the client-observed RPC latency tail.
/// Absent from non-overload reports, so their JSON shape is unchanged.
///
/// Queue/memory counters are whole-run (they describe pressure and peaks,
/// not rates); `refused`/`idle_reaped`/`slow_conns` and the RPC latency are
/// measurement-window scoped like the rest of the report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CapacitySummary {
    /// Admission policy label (`drop` / `queue` / `shed`).
    pub policy: String,
    /// Configured accept-queue depth.
    pub accept_depth: u64,
    /// Peak accept-queue occupancy (never exceeds the depth).
    pub accept_high_water: u64,
    /// SYNs that found the accept queue full.
    pub accept_overflows: u64,
    /// Overflows answered with a stateless SYN cookie.
    pub syn_cookies: u64,
    /// Overflows silently dropped (client retries on RTO).
    pub accept_drops: u64,
    /// Overflows refused with an immediate RST.
    pub sheds: u64,
    /// Connections the server refused with a RST in the window (sheds
    /// plus memory-pressure refusals, as the client observed them).
    pub refused: u64,
    /// Connection-memory budget in bytes (0 = unlimited).
    pub mem_budget_bytes: u64,
    /// Peak connection memory pinned, bytes.
    pub mem_peak_bytes: u64,
    /// Allocations refused by the memory budget.
    pub alloc_fails: u64,
    /// Server-side established connections torn down by the idle reaper
    /// in the window.
    pub idle_reaped: u64,
    /// Arrivals marked as slow (heavy-tailed on/off) clients in the
    /// window.
    pub slow_conns: u64,
    /// Client-observed RPC latency (request sent → response delivered)
    /// over churned connections, microseconds.
    pub rpc: LatencyStats,
}

impl CapacitySummary {
    fn to_value(&self) -> Value {
        json::obj(vec![
            ("policy", Value::Str(self.policy.clone())),
            ("accept_depth", Value::UInt(self.accept_depth)),
            ("accept_high_water", Value::UInt(self.accept_high_water)),
            ("accept_overflows", Value::UInt(self.accept_overflows)),
            ("syn_cookies", Value::UInt(self.syn_cookies)),
            ("accept_drops", Value::UInt(self.accept_drops)),
            ("sheds", Value::UInt(self.sheds)),
            ("refused", Value::UInt(self.refused)),
            ("mem_budget_bytes", Value::UInt(self.mem_budget_bytes)),
            ("mem_peak_bytes", Value::UInt(self.mem_peak_bytes)),
            ("alloc_fails", Value::UInt(self.alloc_fails)),
            ("idle_reaped", Value::UInt(self.idle_reaped)),
            ("slow_conns", Value::UInt(self.slow_conns)),
            ("rpc", self.rpc.to_value()),
        ])
    }

    fn from_value(v: &Value) -> Result<CapacitySummary, JsonError> {
        Ok(CapacitySummary {
            policy: v.get("policy")?.as_str()?.to_string(),
            accept_depth: v.get("accept_depth")?.as_u64()?,
            accept_high_water: v.get("accept_high_water")?.as_u64()?,
            accept_overflows: v.get("accept_overflows")?.as_u64()?,
            syn_cookies: v.get("syn_cookies")?.as_u64()?,
            accept_drops: v.get("accept_drops")?.as_u64()?,
            sheds: v.get("sheds")?.as_u64()?,
            refused: v.get("refused")?.as_u64()?,
            mem_budget_bytes: v.get("mem_budget_bytes")?.as_u64()?,
            mem_peak_bytes: v.get("mem_peak_bytes")?.as_u64()?,
            alloc_fails: v.get("alloc_fails")?.as_u64()?,
            idle_reaped: v.get("idle_reaped")?.as_u64()?,
            slow_conns: v.get("slow_conns")?.as_u64()?,
            rpc: LatencyStats::from_value(v.get("rpc")?)?,
        })
    }
}

/// Whole-window roll-up of the streaming monitor (`hns-monitor`): how many
/// interval snapshots were emitted, the goodput envelope they observed, and
/// per-stage residency quantiles from the cumulative (merged-interval)
/// DDSketches. Present only when `SimConfig::monitor` was set — unmonitored
/// reports keep the exact pre-monitor JSON shape.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MonitorSummary {
    /// Interval snapshots emitted during the measurement window.
    pub snapshots: u64,
    /// Configured snapshot interval, seconds.
    pub interval_secs: f64,
    /// DDSketch relative-error bound the quantiles are good to.
    pub sketch_alpha: f64,
    /// Mean per-interval goodput, Gbit/s (0 when no snapshots).
    pub goodput_avg_gbps: f64,
    /// Quietest interval's goodput, Gbit/s.
    pub goodput_min_gbps: f64,
    /// Busiest interval's goodput, Gbit/s.
    pub goodput_max_gbps: f64,
    /// Cumulative per-stage residency quantiles, pipeline order.
    pub stages: Vec<MonitorStage>,
}

/// One stage row of a [`MonitorSummary`]: sketch-estimated residency
/// quantiles over every sample the monitor folded in the window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MonitorStage {
    /// Stage label (`tcp_rx`, `sock_queue`, …).
    pub stage: String,
    /// Residency samples folded into the sketch.
    pub samples: u64,
    /// Median residency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile residency, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile residency, nanoseconds.
    pub p999_ns: u64,
}

impl MonitorStage {
    fn to_value(&self) -> Value {
        json::obj(vec![
            ("stage", Value::Str(self.stage.clone())),
            ("samples", Value::UInt(self.samples)),
            ("p50_ns", Value::UInt(self.p50_ns)),
            ("p99_ns", Value::UInt(self.p99_ns)),
            ("p999_ns", Value::UInt(self.p999_ns)),
        ])
    }

    fn from_value(v: &Value) -> Result<MonitorStage, JsonError> {
        Ok(MonitorStage {
            stage: v.get("stage")?.as_str()?.to_string(),
            samples: v.get("samples")?.as_u64()?,
            p50_ns: v.get("p50_ns")?.as_u64()?,
            p99_ns: v.get("p99_ns")?.as_u64()?,
            p999_ns: v.get("p999_ns")?.as_u64()?,
        })
    }
}

impl MonitorSummary {
    fn to_value(&self) -> Value {
        json::obj(vec![
            ("snapshots", Value::UInt(self.snapshots)),
            ("interval_secs", Value::Num(self.interval_secs)),
            ("sketch_alpha", Value::Num(self.sketch_alpha)),
            ("goodput_avg_gbps", Value::Num(self.goodput_avg_gbps)),
            ("goodput_min_gbps", Value::Num(self.goodput_min_gbps)),
            ("goodput_max_gbps", Value::Num(self.goodput_max_gbps)),
            (
                "stages",
                Value::Arr(self.stages.iter().map(|s| s.to_value()).collect()),
            ),
        ])
    }

    fn from_value(v: &Value) -> Result<MonitorSummary, JsonError> {
        Ok(MonitorSummary {
            snapshots: v.get("snapshots")?.as_u64()?,
            interval_secs: v.get("interval_secs")?.as_f64()?,
            sketch_alpha: v.get("sketch_alpha")?.as_f64()?,
            goodput_avg_gbps: v.get("goodput_avg_gbps")?.as_f64()?,
            goodput_min_gbps: v.get("goodput_min_gbps")?.as_f64()?,
            goodput_max_gbps: v.get("goodput_max_gbps")?.as_f64()?,
            stages: v
                .get("stages")?
                .as_arr()?
                .iter()
                .map(MonitorStage::from_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Measurements for one side (sender or receiver) of the experiment.
#[derive(Clone, Debug, Default)]
pub struct SideReport {
    /// Cycle breakdown across the eight taxonomy categories.
    pub breakdown: CycleBreakdown,
    /// Total CPU consumed, in cores (e.g. `3.75` = 3.75 fully-busy cores).
    pub cores_used: f64,
    /// Cache statistics for data copies performed on this side.
    pub cache: CacheStats,
}

impl SideReport {
    fn to_value(&self) -> Value {
        json::obj(vec![
            ("breakdown", self.breakdown.to_value()),
            ("cores_used", Value::Num(self.cores_used)),
            ("cache", self.cache.to_value()),
        ])
    }

    fn from_value(v: &Value) -> Result<SideReport, JsonError> {
        Ok(SideReport {
            breakdown: CycleBreakdown::from_value(v.get("breakdown")?)?,
            cores_used: v.get("cores_used")?.as_f64()?,
            cache: CacheStats::from_value(v.get("cache")?)?,
        })
    }
}

/// Full result of one experiment run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Human-readable experiment label.
    pub label: String,
    /// Measurement window length in seconds (warmup excluded).
    pub window_secs: f64,
    /// Application-level bytes delivered (receiver side) in the window.
    pub delivered_bytes: u64,
    /// Total application-level throughput in Gbps.
    pub total_gbps: f64,
    /// Throughput per bottleneck core in Gbps: `total_gbps / max(sender
    /// cores, receiver cores)` — matches the paper's definition of dividing
    /// by CPU utilization at the bottleneck.
    pub thpt_per_core_gbps: f64,
    /// Sender-side measurements.
    pub sender: SideReport,
    /// Receiver-side measurements.
    pub receiver: SideReport,
    /// NAPI→start-of-copy latency distribution.
    pub napi_to_copy: LatencyStats,
    /// RPC round-trip latency distribution (client-observed), short-flow
    /// workloads only.
    pub rpc_latency: LatencyStats,
    /// Post-GRO skb size histogram: `(bucket_lower_bound_bytes, count)`.
    pub skb_size_hist: Vec<(u64, u64)>,
    /// Mean post-GRO skb size in bytes.
    pub avg_skb_bytes: f64,
    /// Packets dropped by the in-network loss injector.
    pub wire_drops: u64,
    /// Packets dropped at the receiver NIC for want of Rx descriptors.
    pub ring_drops: u64,
    /// Full drop taxonomy: every lost frame attributed to the layer that
    /// dropped it (`drops.wire == wire_drops`, `drops.rx_ring + drops.pool
    /// == ring_drops`; the extra buckets cover backlog and socket drops).
    pub drops: DropStats,
    /// Segments retransmitted by senders.
    pub retransmissions: u64,
    /// RPC round-trips completed (short-flow workloads only).
    pub rpcs_completed: u64,
    /// Per-flow delivered application bytes in the window, keyed by flow id,
    /// so mixed workloads can report long-flow vs short-flow throughput.
    pub per_flow_bytes: Vec<(u64, u64)>,
    /// Aggregate throughput timeline: `(seconds_into_window, gbps)` sampled
    /// once per millisecond — convergence/stability diagnostics.
    pub gbps_timeline: Vec<(f64, f64)>,
    /// Per-stage residency summaries from the lifecycle tracer, pipeline
    /// order, plus an `end_to_end` row. Empty when tracing is off — and
    /// then completely absent from the JSON/CSV output, so untraced
    /// reports stay byte-identical to pre-tracing ones.
    pub stage_latency: Vec<StageLatency>,
    /// Stage stamps dropped because a trace ring filled up (0 when tracing
    /// is off). Non-zero means the residency distributions are partial.
    pub trace_overflow: u64,
    /// Connection-lifecycle summary, churn workloads only. `None` (and
    /// absent from the JSON) when the run had no churn, so non-churn
    /// reports stay byte-identical to pre-churn ones.
    pub conn: Option<ConnSummary>,
    /// Overload/capacity summary, present only when the churn run had the
    /// overload model enabled (same absent-when-unused discipline).
    pub capacity: Option<CapacitySummary>,
    /// Streaming-monitor roll-up, present only when `SimConfig::monitor`
    /// was set (same absent-when-unused discipline).
    pub monitor: Option<MonitorSummary>,
}

impl Report {
    /// Throughput of one flow in Gbps (0 if the flow is unknown).
    pub fn flow_gbps(&self, flow_id: u64) -> f64 {
        if self.window_secs <= 0.0 {
            return 0.0;
        }
        self.per_flow_bytes
            .iter()
            .find(|(id, _)| *id == flow_id)
            .map(|(_, b)| *b as f64 * 8.0 / 1e9 / self.window_secs)
            .unwrap_or(0.0)
    }

    /// Which side is the CPU bottleneck (more cores consumed).
    pub fn bottleneck_is_receiver(&self) -> bool {
        self.receiver.cores_used >= self.sender.cores_used
    }

    /// Jain's fairness index over per-flow delivered bytes:
    /// `(Σxᵢ)² / (n·Σxᵢ²)` ∈ (0, 1], 1 = perfectly fair. Used to check
    /// that saturated multi-flow patterns (one-to-one, all-to-all) share
    /// the link evenly.
    pub fn fairness_index(&self) -> f64 {
        let xs: Vec<f64> = self.per_flow_bytes.iter().map(|&(_, b)| b as f64).collect();
        if xs.is_empty() {
            return 1.0;
        }
        let sum: f64 = xs.iter().sum();
        let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        sum * sum / (xs.len() as f64 * sum_sq)
    }

    /// Serialize to pretty JSON. Output is byte-identical for identical
    /// reports, which the determinism regression tests rely on.
    pub fn to_json(&self) -> String {
        self.to_value().pretty()
    }

    /// Parse a report previously rendered by [`Report::to_json`].
    pub fn from_json(text: &str) -> Result<Report, JsonError> {
        Report::from_value(&Value::parse(text)?)
    }

    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("label", Value::Str(self.label.clone())),
            ("window_secs", Value::Num(self.window_secs)),
            ("delivered_bytes", Value::UInt(self.delivered_bytes)),
            ("total_gbps", Value::Num(self.total_gbps)),
            ("thpt_per_core_gbps", Value::Num(self.thpt_per_core_gbps)),
            ("sender", self.sender.to_value()),
            ("receiver", self.receiver.to_value()),
            ("napi_to_copy", self.napi_to_copy.to_value()),
            ("rpc_latency", self.rpc_latency.to_value()),
            ("skb_size_hist", json::pairs_u64(&self.skb_size_hist)),
            ("avg_skb_bytes", Value::Num(self.avg_skb_bytes)),
            ("wire_drops", Value::UInt(self.wire_drops)),
            ("ring_drops", Value::UInt(self.ring_drops)),
            ("drops", self.drops.to_value()),
            ("retransmissions", Value::UInt(self.retransmissions)),
            ("rpcs_completed", Value::UInt(self.rpcs_completed)),
            ("per_flow_bytes", json::pairs_u64(&self.per_flow_bytes)),
            ("gbps_timeline", json::pairs_f64(&self.gbps_timeline)),
        ];
        // Trace fields only exist when tracing ran: untraced reports keep
        // the exact pre-tracing JSON shape (determinism tests diff bytes).
        if !self.stage_latency.is_empty() {
            fields.push((
                "stage_latency",
                Value::Arr(self.stage_latency.iter().map(|s| s.to_value()).collect()),
            ));
            fields.push(("trace_overflow", Value::UInt(self.trace_overflow)));
        }
        // Likewise the churn summary: only present when churn ran.
        if let Some(conn) = &self.conn {
            fields.push(("conn", conn.to_value()));
        }
        // And the overload summary: only when the overload model ran.
        if let Some(capacity) = &self.capacity {
            fields.push(("capacity", capacity.to_value()));
        }
        // And the monitor roll-up: only when the monitor streamed.
        if let Some(monitor) = &self.monitor {
            fields.push(("monitor", monitor.to_value()));
        }
        json::obj(fields)
    }

    fn from_value(v: &Value) -> Result<Report, JsonError> {
        Ok(Report {
            label: v.get("label")?.as_str()?.to_string(),
            window_secs: v.get("window_secs")?.as_f64()?,
            delivered_bytes: v.get("delivered_bytes")?.as_u64()?,
            total_gbps: v.get("total_gbps")?.as_f64()?,
            thpt_per_core_gbps: v.get("thpt_per_core_gbps")?.as_f64()?,
            sender: SideReport::from_value(v.get("sender")?)?,
            receiver: SideReport::from_value(v.get("receiver")?)?,
            napi_to_copy: LatencyStats::from_value(v.get("napi_to_copy")?)?,
            rpc_latency: LatencyStats::from_value(v.get("rpc_latency")?)?,
            skb_size_hist: json::parse_pairs_u64(v.get("skb_size_hist")?)?,
            avg_skb_bytes: v.get("avg_skb_bytes")?.as_f64()?,
            wire_drops: v.get("wire_drops")?.as_u64()?,
            ring_drops: v.get("ring_drops")?.as_u64()?,
            drops: DropStats::from_value(v.get("drops")?)?,
            retransmissions: v.get("retransmissions")?.as_u64()?,
            rpcs_completed: v.get("rpcs_completed")?.as_u64()?,
            per_flow_bytes: json::parse_pairs_u64(v.get("per_flow_bytes")?)?,
            gbps_timeline: json::parse_pairs_f64(v.get("gbps_timeline")?)?,
            stage_latency: match v.get("stage_latency") {
                Ok(arr) => arr
                    .as_arr()?
                    .iter()
                    .map(StageLatency::from_value)
                    .collect::<Result<_, _>>()?,
                Err(_) => Vec::new(),
            },
            trace_overflow: match v.get("trace_overflow") {
                Ok(n) => n.as_u64()?,
                Err(_) => 0,
            },
            conn: match v.get("conn") {
                Ok(o) => Some(ConnSummary::from_value(o)?),
                Err(_) => None,
            },
            capacity: match v.get("capacity") {
                Ok(o) => Some(CapacitySummary::from_value(o)?),
                Err(_) => None,
            },
            monitor: match v.get("monitor") {
                Ok(o) => Some(MonitorSummary::from_value(o)?),
                Err(_) => None,
            },
        })
    }

    /// Coefficient of variation of the throughput timeline — a steadiness
    /// check for the measurement window (0 = perfectly steady; empty or
    /// idle timelines return 0).
    pub fn throughput_cv(&self) -> f64 {
        let xs: Vec<f64> = self.gbps_timeline.iter().map(|&(_, g)| g).collect();
        if xs.len() < 2 {
            return 0.0;
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::Category;

    #[test]
    fn cache_miss_rate() {
        let cs = CacheStats {
            hit_bytes: 30,
            miss_bytes: 70,
        };
        assert!((cs.miss_rate() - 0.7).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn cache_merge() {
        let mut a = CacheStats {
            hit_bytes: 1,
            miss_bytes: 2,
        };
        a.merge(CacheStats {
            hit_bytes: 3,
            miss_bytes: 4,
        });
        assert_eq!(a.hit_bytes, 4);
        assert_eq!(a.miss_bytes, 6);
    }

    #[test]
    fn flow_gbps_lookup() {
        let r = Report {
            window_secs: 1.0,
            per_flow_bytes: vec![(7, 125_000_000)], // 1 Gbps
            ..Report::default()
        };
        assert!((r.flow_gbps(7) - 1.0).abs() < 1e-9);
        assert_eq!(r.flow_gbps(8), 0.0);
    }

    #[test]
    fn bottleneck_detection() {
        let mut r = Report::default();
        r.sender.cores_used = 0.5;
        r.receiver.cores_used = 1.0;
        assert!(r.bottleneck_is_receiver());
        r.sender.cores_used = 2.0;
        assert!(!r.bottleneck_is_receiver());
    }

    #[test]
    fn fairness_index_properties() {
        let mut r = Report {
            per_flow_bytes: vec![(0, 100), (1, 100), (2, 100)],
            ..Report::default()
        };
        assert!((r.fairness_index() - 1.0).abs() < 1e-12, "equal shares");
        r.per_flow_bytes = vec![(0, 300), (1, 0), (2, 0)];
        assert!((r.fairness_index() - 1.0 / 3.0).abs() < 1e-12, "one hog");
        r.per_flow_bytes = vec![];
        assert_eq!(r.fairness_index(), 1.0, "vacuous");
    }

    #[test]
    fn throughput_cv_behaviour() {
        let mut r = Report::default();
        assert_eq!(r.throughput_cv(), 0.0, "empty timeline");
        r.gbps_timeline = vec![(0.001, 40.0), (0.002, 40.0), (0.003, 40.0)];
        assert!(r.throughput_cv() < 1e-12, "steady timeline");
        r.gbps_timeline = vec![(0.001, 10.0), (0.002, 70.0)];
        assert!(r.throughput_cv() > 0.5, "bursty timeline");
    }

    #[test]
    fn untraced_report_json_has_no_trace_keys() {
        let r = Report::default();
        let j = r.to_json();
        assert!(!j.contains("stage_latency"));
        assert!(!j.contains("trace_overflow"));
        let back = Report::from_json(&j).unwrap();
        assert!(back.stage_latency.is_empty());
        assert_eq!(back.trace_overflow, 0);
    }

    #[test]
    fn stage_latency_round_trips() {
        let r = Report {
            stage_latency: vec![StageLatency {
                stage: "tcp_rx".into(),
                samples: 100,
                mean_ns: 512.5,
                p50_ns: 400,
                p90_ns: 900,
                p99_ns: 1800,
                p999_ns: 2500,
                max_ns: 3000,
            }],
            trace_overflow: 7,
            ..Report::default()
        };
        let j = r.to_json();
        let back = Report::from_json(&j).unwrap();
        assert_eq!(back.stage_latency, r.stage_latency);
        assert_eq!(back.trace_overflow, 7);
        assert_eq!(back.to_json(), j, "serialization is stable");
    }

    #[test]
    fn non_churn_report_json_has_no_conn_key() {
        let r = Report::default();
        let j = r.to_json();
        assert!(!j.contains("\"conn\""));
        let back = Report::from_json(&j).unwrap();
        assert!(back.conn.is_none());
    }

    #[test]
    fn conn_summary_round_trips() {
        let r = Report {
            conn: Some(ConnSummary {
                opened: 1000,
                established: 990,
                closed: 980,
                failed: 2,
                retransmits: 12,
                rpcs: 970,
                stale_frames: 1,
                conn_rate_cps: 99_000.0,
                handshake: LatencyStats {
                    avg_us: 12.5,
                    p99_us: 40.0,
                    samples: 990,
                },
                established_high_water: 64,
                time_wait_high_water: 32,
                table_capacity: 80,
                table_slot_reuse: 920,
                epoll_wakeups: 100,
                epoll_events: 990,
            }),
            ..Report::default()
        };
        let j = r.to_json();
        let back = Report::from_json(&j).unwrap();
        assert_eq!(back.conn, r.conn);
        assert_eq!(back.to_json(), j, "serialization is stable");
        let c = back.conn.unwrap();
        assert!((c.epoll_events_per_wakeup() - 9.9).abs() < 1e-12);
        assert_eq!(ConnSummary::default().epoll_events_per_wakeup(), 0.0);
    }

    #[test]
    fn non_overload_report_json_has_no_capacity_key() {
        let r = Report {
            conn: Some(ConnSummary::default()),
            ..Report::default()
        };
        let j = r.to_json();
        assert!(
            !j.contains("\"capacity\""),
            "churn without overload stays capacity-free"
        );
        assert!(Report::from_json(&j).unwrap().capacity.is_none());
    }

    #[test]
    fn capacity_summary_round_trips() {
        let r = Report {
            conn: Some(ConnSummary::default()),
            capacity: Some(CapacitySummary {
                policy: "queue".into(),
                accept_depth: 64,
                accept_high_water: 64,
                accept_overflows: 123,
                syn_cookies: 123,
                accept_drops: 0,
                sheds: 0,
                refused: 5,
                mem_budget_bytes: 2 << 20,
                mem_peak_bytes: 1_900_000,
                alloc_fails: 7,
                idle_reaped: 11,
                slow_conns: 40,
                rpc: LatencyStats {
                    avg_us: 80.0,
                    p99_us: 900.0,
                    samples: 400,
                },
            }),
            ..Report::default()
        };
        let j = r.to_json();
        let back = Report::from_json(&j).unwrap();
        assert_eq!(back.capacity, r.capacity);
        assert_eq!(back.to_json(), j, "serialization is stable");
    }

    #[test]
    fn unmonitored_report_json_has_no_monitor_key() {
        let r = Report {
            conn: Some(ConnSummary::default()),
            capacity: Some(CapacitySummary::default()),
            ..Report::default()
        };
        let j = r.to_json();
        assert!(
            !j.contains("\"monitor\""),
            "monitor-off reports stay monitor-free"
        );
        assert!(Report::from_json(&j).unwrap().monitor.is_none());
    }

    #[test]
    fn monitor_summary_round_trips() {
        let r = Report {
            monitor: Some(MonitorSummary {
                snapshots: 30,
                interval_secs: 0.01,
                sketch_alpha: 0.01,
                goodput_avg_gbps: 21.5,
                goodput_min_gbps: 18.0,
                goodput_max_gbps: 24.25,
                stages: vec![MonitorStage {
                    stage: "sock_queue".into(),
                    samples: 4000,
                    p50_ns: 900,
                    p99_ns: 8200,
                    p999_ns: 15000,
                }],
            }),
            ..Report::default()
        };
        let j = r.to_json();
        let back = Report::from_json(&j).unwrap();
        assert_eq!(back.monitor, r.monitor);
        assert_eq!(back.to_json(), j, "serialization is stable");
    }

    #[test]
    fn json_round_trip() {
        let mut r = Report {
            label: "unit".into(),
            total_gbps: 42.0,
            ..Report::default()
        };
        r.receiver.breakdown.charge(Category::DataCopy, 99);
        r.drops.wire = 3;
        r.drops.pool = 4;
        r.skb_size_hist = vec![(0, 5), (4096, 9)];
        r.gbps_timeline = vec![(0.001, 41.5)];
        let j = r.to_json();
        let back = Report::from_json(&j).unwrap();
        assert_eq!(back.label, "unit");
        assert_eq!(back.receiver.breakdown[Category::DataCopy], 99);
        assert_eq!(back.drops.total(), 7);
        assert_eq!(back.skb_size_hist, r.skb_size_hist);
        assert_eq!(back.gbps_timeline, r.gbps_timeline);
        assert_eq!(back.to_json(), j, "serialization is stable");
    }
}
