//! Experiment report: the measurement output of one simulated scenario.
//!
//! Every figure bench runs one or more experiments and renders the resulting
//! [`Report`]s. Reports serialize to JSON so EXPERIMENTS.md entries can be
//! regenerated mechanically.

use crate::taxonomy::CycleBreakdown;
use serde::{Deserialize, Serialize};

/// Cache behaviour observed during receive-side (or send-side) data copy.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Bytes copied that were resident in the DCA/L3 cache.
    pub hit_bytes: u64,
    /// Bytes copied that had to be fetched from DRAM (local or remote).
    pub miss_bytes: u64,
}

impl CacheStats {
    /// Cache miss rate in `[0, 1]` (0 if no copies happened).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hit_bytes + self.miss_bytes;
        if total == 0 {
            0.0
        } else {
            self.miss_bytes as f64 / total as f64
        }
    }

    /// Merge another sample set into this one.
    pub fn merge(&mut self, other: CacheStats) {
        self.hit_bytes += other.hit_bytes;
        self.miss_bytes += other.miss_bytes;
    }
}

/// Latency distribution summary in microseconds (paper Fig. 3f reports the
/// NAPI→start-of-data-copy delay).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Mean latency.
    pub avg_us: f64,
    /// 99th-percentile latency.
    pub p99_us: f64,
    /// Number of samples.
    pub samples: u64,
}

/// Measurements for one side (sender or receiver) of the experiment.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SideReport {
    /// Cycle breakdown across the eight taxonomy categories.
    pub breakdown: CycleBreakdown,
    /// Total CPU consumed, in cores (e.g. `3.75` = 3.75 fully-busy cores).
    pub cores_used: f64,
    /// Cache statistics for data copies performed on this side.
    pub cache: CacheStats,
}

/// Full result of one experiment run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Report {
    /// Human-readable experiment label.
    pub label: String,
    /// Measurement window length in seconds (warmup excluded).
    pub window_secs: f64,
    /// Application-level bytes delivered (receiver side) in the window.
    pub delivered_bytes: u64,
    /// Total application-level throughput in Gbps.
    pub total_gbps: f64,
    /// Throughput per bottleneck core in Gbps: `total_gbps / max(sender
    /// cores, receiver cores)` — matches the paper's definition of dividing
    /// by CPU utilization at the bottleneck.
    pub thpt_per_core_gbps: f64,
    /// Sender-side measurements.
    pub sender: SideReport,
    /// Receiver-side measurements.
    pub receiver: SideReport,
    /// NAPI→start-of-copy latency distribution.
    pub napi_to_copy: LatencyStats,
    /// RPC round-trip latency distribution (client-observed), short-flow
    /// workloads only.
    pub rpc_latency: LatencyStats,
    /// Post-GRO skb size histogram: `(bucket_lower_bound_bytes, count)`.
    pub skb_size_hist: Vec<(u64, u64)>,
    /// Mean post-GRO skb size in bytes.
    pub avg_skb_bytes: f64,
    /// Packets dropped by the in-network loss injector.
    pub wire_drops: u64,
    /// Packets dropped at the receiver NIC for want of Rx descriptors.
    pub ring_drops: u64,
    /// Segments retransmitted by senders.
    pub retransmissions: u64,
    /// RPC round-trips completed (short-flow workloads only).
    pub rpcs_completed: u64,
    /// Per-flow delivered application bytes in the window, keyed by flow id,
    /// so mixed workloads can report long-flow vs short-flow throughput.
    pub per_flow_bytes: Vec<(u64, u64)>,
    /// Aggregate throughput timeline: `(seconds_into_window, gbps)` sampled
    /// once per millisecond — convergence/stability diagnostics.
    pub gbps_timeline: Vec<(f64, f64)>,
}

impl Report {
    /// Throughput of one flow in Gbps (0 if the flow is unknown).
    pub fn flow_gbps(&self, flow_id: u64) -> f64 {
        if self.window_secs <= 0.0 {
            return 0.0;
        }
        self.per_flow_bytes
            .iter()
            .find(|(id, _)| *id == flow_id)
            .map(|(_, b)| *b as f64 * 8.0 / 1e9 / self.window_secs)
            .unwrap_or(0.0)
    }

    /// Which side is the CPU bottleneck (more cores consumed).
    pub fn bottleneck_is_receiver(&self) -> bool {
        self.receiver.cores_used >= self.sender.cores_used
    }

    /// Jain's fairness index over per-flow delivered bytes:
    /// `(Σxᵢ)² / (n·Σxᵢ²)` ∈ (0, 1], 1 = perfectly fair. Used to check
    /// that saturated multi-flow patterns (one-to-one, all-to-all) share
    /// the link evenly.
    pub fn fairness_index(&self) -> f64 {
        let xs: Vec<f64> = self
            .per_flow_bytes
            .iter()
            .map(|&(_, b)| b as f64)
            .collect();
        if xs.is_empty() {
            return 1.0;
        }
        let sum: f64 = xs.iter().sum();
        let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        sum * sum / (xs.len() as f64 * sum_sq)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Coefficient of variation of the throughput timeline — a steadiness
    /// check for the measurement window (0 = perfectly steady; empty or
    /// idle timelines return 0).
    pub fn throughput_cv(&self) -> f64 {
        let xs: Vec<f64> = self.gbps_timeline.iter().map(|&(_, g)| g).collect();
        if xs.len() < 2 {
            return 0.0;
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::Category;

    #[test]
    fn cache_miss_rate() {
        let cs = CacheStats {
            hit_bytes: 30,
            miss_bytes: 70,
        };
        assert!((cs.miss_rate() - 0.7).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn cache_merge() {
        let mut a = CacheStats {
            hit_bytes: 1,
            miss_bytes: 2,
        };
        a.merge(CacheStats {
            hit_bytes: 3,
            miss_bytes: 4,
        });
        assert_eq!(a.hit_bytes, 4);
        assert_eq!(a.miss_bytes, 6);
    }

    #[test]
    fn flow_gbps_lookup() {
        let r = Report {
            window_secs: 1.0,
            per_flow_bytes: vec![(7, 125_000_000)], // 1 Gbps
            ..Report::default()
        };
        assert!((r.flow_gbps(7) - 1.0).abs() < 1e-9);
        assert_eq!(r.flow_gbps(8), 0.0);
    }

    #[test]
    fn bottleneck_detection() {
        let mut r = Report::default();
        r.sender.cores_used = 0.5;
        r.receiver.cores_used = 1.0;
        assert!(r.bottleneck_is_receiver());
        r.sender.cores_used = 2.0;
        assert!(!r.bottleneck_is_receiver());
    }

    #[test]
    fn fairness_index_properties() {
        let mut r = Report {
            per_flow_bytes: vec![(0, 100), (1, 100), (2, 100)],
            ..Report::default()
        };
        assert!((r.fairness_index() - 1.0).abs() < 1e-12, "equal shares");
        r.per_flow_bytes = vec![(0, 300), (1, 0), (2, 0)];
        assert!((r.fairness_index() - 1.0 / 3.0).abs() < 1e-12, "one hog");
        r.per_flow_bytes = vec![];
        assert_eq!(r.fairness_index(), 1.0, "vacuous");
    }

    #[test]
    fn throughput_cv_behaviour() {
        let mut r = Report::default();
        assert_eq!(r.throughput_cv(), 0.0, "empty timeline");
        r.gbps_timeline = vec![(0.001, 40.0), (0.002, 40.0), (0.003, 40.0)];
        assert!(r.throughput_cv() < 1e-12, "steady timeline");
        r.gbps_timeline = vec![(0.001, 10.0), (0.002, 70.0)];
        assert!(r.throughput_cv() > 0.5, "bursty timeline");
    }

    #[test]
    fn json_round_trip() {
        let mut r = Report {
            label: "unit".into(),
            total_gbps: 42.0,
            ..Report::default()
        };
        r.receiver.breakdown.charge(Category::DataCopy, 99);
        let j = r.to_json();
        let back: Report = serde_json::from_str(&j).unwrap();
        assert_eq!(back.label, "unit");
        assert_eq!(back.receiver.breakdown[Category::DataCopy], 99);
    }
}
