//! Minimal self-contained JSON tree, parser and printer.
//!
//! The workspace builds without network access, so serde/serde_json are not
//! available. Reports only need a small, deterministic JSON surface: objects,
//! arrays, strings, unsigned integers and floats. Output is stable across
//! runs for identical inputs (integer counters print exactly; floats use
//! Rust's shortest round-trippable formatting), which the determinism
//! regression tests rely on.

use std::fmt;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer literal (kept exact; no f64 round-trip).
    UInt(u64),
    /// Any other number (negative or fractional).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; insertion order is preserved verbatim.
    Obj(Vec<(String, Value)>),
}

/// Error from [`Value::parse`] or the typed accessors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong, with enough context to locate the problem.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        message: message.into(),
    })
}

impl Value {
    /// Parse one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Result<&Value, JsonError> {
        match self {
            Value::Obj(fields) => match fields.iter().find(|(k, _)| k == key) {
                Some((_, v)) => Ok(v),
                None => err(format!("missing field `{key}`")),
            },
            _ => err(format!("`{key}` lookup on non-object")),
        }
    }

    /// Unsigned-integer view (accepts exact `UInt` only).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Value::UInt(n) => Ok(*n),
            _ => err(format!("expected unsigned integer, got {self:?}")),
        }
    }

    /// Float view (accepts integers too).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Value::UInt(n) => Ok(*n as f64),
            Value::Num(x) => Ok(*x),
            _ => err(format!("expected number, got {self:?}")),
        }
    }

    /// String view.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => err(format!("expected string, got {self:?}")),
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Arr(items) => Ok(items),
            _ => err(format!("expected array, got {self:?}")),
        }
    }

    /// Render as pretty JSON (two-space indent), deterministically.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Render compactly on one line.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Num(x) => write_f64(out, *x),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    }
                    item.write(out, indent + 1, pretty);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    }
                    write_string(out, key);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write(out, indent + 1, pretty);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Inf; reports never produce them, but a lossy
        // placeholder beats panicking inside Display.
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    // Keep floats lexically floats so the value round-trips as Num.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| JsonError {
                                    message: "non-utf8 \\u escape".into(),
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                                message: format!("bad \\u escape `{hex}`"),
                            })?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // printer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return err("truncated utf-8 sequence");
                    }
                    let s =
                        std::str::from_utf8(&self.bytes[start..end]).map_err(|_| JsonError {
                            message: format!("invalid utf-8 at byte {start}"),
                        })?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Value::Num(x)),
            Err(_) => err(format!("bad number `{text}` at byte {start}")),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first < 0xe0 {
        2
    } else if first < 0xf0 {
        3
    } else {
        4
    }
}

/// Build an object value from `(key, value)` pairs.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Array of `(u64, u64)` pairs, each as a two-element array.
pub fn pairs_u64(pairs: &[(u64, u64)]) -> Value {
    Value::Arr(
        pairs
            .iter()
            .map(|&(a, b)| Value::Arr(vec![Value::UInt(a), Value::UInt(b)]))
            .collect(),
    )
}

/// Array of `(f64, f64)` pairs, each as a two-element array.
pub fn pairs_f64(pairs: &[(f64, f64)]) -> Value {
    Value::Arr(
        pairs
            .iter()
            .map(|&(a, b)| Value::Arr(vec![Value::Num(a), Value::Num(b)]))
            .collect(),
    )
}

/// Parse an array of `(u64, u64)` pairs.
pub fn parse_pairs_u64(v: &Value) -> Result<Vec<(u64, u64)>, JsonError> {
    v.as_arr()?
        .iter()
        .map(|p| {
            let p = p.as_arr()?;
            if p.len() != 2 {
                return err("pair is not length 2");
            }
            Ok((p[0].as_u64()?, p[1].as_u64()?))
        })
        .collect()
}

/// Parse an array of `(f64, f64)` pairs.
pub fn parse_pairs_f64(v: &Value) -> Result<Vec<(f64, f64)>, JsonError> {
    v.as_arr()?
        .iter()
        .map(|p| {
            let p = p.as_arr()?;
            if p.len() != 2 {
                return err("pair is not length 2");
            }
            Ok((p[0].as_f64()?, p[1].as_f64()?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "42", "\"hi\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v.compact(), text);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.5, -1.25, 1e-9, 123456.789, 40.0, f64::MAX] {
            let text = Value::Num(x).compact();
            match Value::parse(&text).unwrap() {
                Value::Num(y) => assert_eq!(x, y, "{text}"),
                other => panic!("{text} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn large_u64_is_exact() {
        let n = u64::MAX - 7;
        let text = Value::UInt(n).compact();
        assert_eq!(Value::parse(&text).unwrap().as_u64().unwrap(), n);
    }

    #[test]
    fn nested_structure_round_trips() {
        let v = obj(vec![
            ("label", Value::Str("a \"quoted\"\nlabel".into())),
            ("counts", pairs_u64(&[(1, 2), (3, 4)])),
            ("timeline", pairs_f64(&[(0.001, 40.0)])),
            ("empty_arr", Value::Arr(vec![])),
            ("empty_obj", Value::Obj(vec![])),
        ]);
        let pretty = v.pretty();
        let back = Value::parse(&pretty).unwrap();
        assert_eq!(back, v);
        assert_eq!(Value::parse(&v.compact()).unwrap(), v);
        assert_eq!(
            parse_pairs_u64(back.get("counts").unwrap()).unwrap(),
            vec![(1, 2), (3, 4)]
        );
        assert_eq!(
            parse_pairs_f64(back.get("timeline").unwrap()).unwrap(),
            vec![(0.001, 40.0)]
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        let v = Value::parse("{\"a\": 1}").unwrap();
        assert!(v.get("b").is_err());
        assert!(v.get("a").unwrap().as_str().is_err());
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Value::Str("π ≈ 3.14159 — ok".into());
        assert_eq!(Value::parse(&v.compact()).unwrap(), v);
    }
}
