//! Drop taxonomy: where every lost frame died.
//!
//! The paper reports only an aggregate packet-drop rate (Fig. 9). For fault
//! injection we need attribution: a frame can be lost on the wire, at the
//! NIC for want of Rx descriptors, at the softirq backlog (GRO overflow,
//! the `netdev_max_backlog` analogue), at the socket for arriving outside
//! the receive window, or because the page pool could not back a descriptor
//! replenish. Every dropped frame is charged to exactly one bucket, so
//! `total()` equals the true number of frames lost end-to-end and resilience
//! experiments can verify full accounting.
//!
//! Overload runs add connection-level classes: a handshake the client
//! abandoned after `syn_retry_max`, a SYN discarded at a full accept queue,
//! and an allocation refused by the connection-memory budget. These are
//! connection-lifecycle losses rather than frame-layer ones; they serialize
//! only when nonzero so pre-overload reports stay byte-identical.

use crate::json::{obj, JsonError, Value};

/// [`DropStats`] re-grouped by observing layer (see [`DropStats::by_layer`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LayerDrops {
    /// Drops the link itself observed.
    pub wire: u64,
    /// Drops the ToR switch observed (shared-buffer overflow).
    pub switch: u64,
    /// Drops the NIC observed (descriptor or page-pool exhaustion).
    pub nic: u64,
    /// Drops the softirq backlog cap observed.
    pub backlog: u64,
    /// Drops the socket observed (duplicate data discarded).
    pub socket: u64,
    /// Connection-level losses the lifecycle engine observed (handshake
    /// aborts, accept-queue discards, memory-budget refusals).
    pub conn: u64,
}

/// Frames dropped, attributed to the layer that dropped them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DropStats {
    /// Lost in the network (random loss, burst loss, link flap).
    pub wire: u64,
    /// Dropped at the ToR switch because the shared egress buffer was full
    /// (fabric incast overflow; only possible when a fabric is configured).
    pub switch_buffer: u64,
    /// Arrived at the NIC but no free Rx descriptor (organic exhaustion
    /// under incast, or injected ring-exhaustion faults).
    pub rx_ring: u64,
    /// Rx descriptor available but the per-core softirq backlog was full
    /// (GRO/backlog overflow).
    pub gro_overflow: u64,
    /// Delivered to TCP but outside the receive window (socket queue full
    /// from the sender's point of view).
    pub socket_queue: u64,
    /// Rx descriptor replenish failed because the page pool was exhausted
    /// (injected allocation-failure faults).
    pub pool: u64,
    /// Handshake abandoned by the client after exhausting `syn_retry_max`
    /// (the connection, not a single frame, is what was lost).
    pub handshake_abort: u64,
    /// SYN discarded because the accept queue was full and the admission
    /// policy was `Drop`.
    pub accept_queue: u64,
    /// Connection-memory budget refused an allocation (request sock at
    /// SYN, or full sock at establish — the latter surfaces as a RST).
    pub conn_memory: u64,
}

impl DropStats {
    /// All-zero stats.
    pub const fn new() -> Self {
        DropStats {
            wire: 0,
            switch_buffer: 0,
            rx_ring: 0,
            gro_overflow: 0,
            socket_queue: 0,
            pool: 0,
            handshake_abort: 0,
            accept_queue: 0,
            conn_memory: 0,
        }
    }

    /// Total losses across every attribution point (frame-layer and
    /// connection-level classes alike).
    pub fn total(&self) -> u64 {
        self.wire
            + self.switch_buffer
            + self.rx_ring
            + self.gro_overflow
            + self.socket_queue
            + self.pool
            + self.handshake_abort
            + self.accept_queue
            + self.conn_memory
    }

    /// Merge another sample set into this one.
    pub fn merge(&mut self, other: DropStats) {
        self.wire += other.wire;
        self.switch_buffer += other.switch_buffer;
        self.rx_ring += other.rx_ring;
        self.gro_overflow += other.gro_overflow;
        self.socket_queue += other.socket_queue;
        self.pool += other.pool;
        self.handshake_abort += other.handshake_abort;
        self.accept_queue += other.accept_queue;
        self.conn_memory += other.conn_memory;
    }

    /// Bucket-wise `self - baseline`, used to exclude warmup drops from the
    /// measurement window (saturating, so a never-reset baseline is safe).
    pub fn since(&self, baseline: DropStats) -> DropStats {
        DropStats {
            wire: self.wire.saturating_sub(baseline.wire),
            switch_buffer: self.switch_buffer.saturating_sub(baseline.switch_buffer),
            rx_ring: self.rx_ring.saturating_sub(baseline.rx_ring),
            gro_overflow: self.gro_overflow.saturating_sub(baseline.gro_overflow),
            socket_queue: self.socket_queue.saturating_sub(baseline.socket_queue),
            pool: self.pool.saturating_sub(baseline.pool),
            handshake_abort: self
                .handshake_abort
                .saturating_sub(baseline.handshake_abort),
            accept_queue: self.accept_queue.saturating_sub(baseline.accept_queue),
            conn_memory: self.conn_memory.saturating_sub(baseline.conn_memory),
        }
    }

    /// The taxonomy re-grouped by the *layer* that observed each drop: the
    /// wire keeps its own counter, the NIC observes both descriptor and
    /// page-pool failures, the softirq backlog observes its cap, and the
    /// socket observes duplicate discards. The invariant auditor reconciles
    /// each group against the corresponding layer-local counters, proving
    /// every dropped frame was charged to exactly one bucket.
    pub fn by_layer(&self) -> LayerDrops {
        LayerDrops {
            wire: self.wire,
            switch: self.switch_buffer,
            nic: self.rx_ring + self.pool,
            backlog: self.gro_overflow,
            socket: self.socket_queue,
            conn: self.handshake_abort + self.accept_queue + self.conn_memory,
        }
    }

    /// Labelled `(bucket, count)` view in stable order.
    pub fn buckets(&self) -> [(&'static str, u64); 9] {
        [
            ("wire", self.wire),
            ("switch_buffer", self.switch_buffer),
            ("rx_ring", self.rx_ring),
            ("gro_overflow", self.gro_overflow),
            ("socket_queue", self.socket_queue),
            ("pool", self.pool),
            ("handshake_abort", self.handshake_abort),
            ("accept_queue", self.accept_queue),
            ("conn_memory", self.conn_memory),
        ]
    }

    pub(crate) fn to_value(self) -> Value {
        let mut fields = vec![
            ("wire", Value::UInt(self.wire)),
            ("rx_ring", Value::UInt(self.rx_ring)),
            ("gro_overflow", Value::UInt(self.gro_overflow)),
            ("socket_queue", Value::UInt(self.socket_queue)),
            ("pool", Value::UInt(self.pool)),
        ];
        // Connection-level and fabric classes only appear when something
        // was lost there, keeping pre-overload/pre-fabric reports
        // byte-identical.
        if self.switch_buffer > 0 {
            fields.push(("switch_buffer", Value::UInt(self.switch_buffer)));
        }
        if self.handshake_abort > 0 {
            fields.push(("handshake_abort", Value::UInt(self.handshake_abort)));
        }
        if self.accept_queue > 0 {
            fields.push(("accept_queue", Value::UInt(self.accept_queue)));
        }
        if self.conn_memory > 0 {
            fields.push(("conn_memory", Value::UInt(self.conn_memory)));
        }
        obj(fields)
    }

    pub(crate) fn from_value(v: &Value) -> Result<DropStats, JsonError> {
        let opt = |key: &str| -> Result<u64, JsonError> {
            match v.get(key) {
                Ok(x) => x.as_u64(),
                Err(_) => Ok(0),
            }
        };
        Ok(DropStats {
            wire: v.get("wire")?.as_u64()?,
            switch_buffer: opt("switch_buffer")?,
            rx_ring: v.get("rx_ring")?.as_u64()?,
            gro_overflow: v.get("gro_overflow")?.as_u64()?,
            socket_queue: v.get("socket_queue")?.as_u64()?,
            pool: v.get("pool")?.as_u64()?,
            handshake_abort: opt("handshake_abort")?,
            accept_queue: opt("accept_queue")?,
            conn_memory: opt("conn_memory")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_every_bucket() {
        let d = DropStats {
            wire: 1,
            switch_buffer: 9,
            rx_ring: 2,
            gro_overflow: 3,
            socket_queue: 4,
            pool: 5,
            handshake_abort: 6,
            accept_queue: 7,
            conn_memory: 8,
        };
        assert_eq!(d.total(), 45);
        assert_eq!(d.buckets().iter().map(|&(_, n)| n).sum::<u64>(), 45);
    }

    #[test]
    fn merge_and_since_are_inverse() {
        let mut a = DropStats {
            wire: 10,
            rx_ring: 5,
            ..DropStats::new()
        };
        let b = DropStats {
            wire: 3,
            pool: 7,
            ..DropStats::new()
        };
        a.merge(b);
        assert_eq!(a.wire, 13);
        assert_eq!(a.pool, 7);
        let delta = a.since(b);
        assert_eq!(delta.wire, 10);
        assert_eq!(delta.rx_ring, 5);
        assert_eq!(delta.pool, 0);
    }

    #[test]
    fn by_layer_partitions_every_bucket() {
        let d = DropStats {
            wire: 1,
            switch_buffer: 9,
            rx_ring: 2,
            gro_overflow: 3,
            socket_queue: 4,
            pool: 5,
            handshake_abort: 6,
            accept_queue: 7,
            conn_memory: 8,
        };
        let l = d.by_layer();
        assert_eq!(l.wire, 1);
        assert_eq!(l.switch, 9);
        assert_eq!(l.nic, 7);
        assert_eq!(l.backlog, 3);
        assert_eq!(l.socket, 4);
        assert_eq!(l.conn, 21);
        assert_eq!(
            l.wire + l.switch + l.nic + l.backlog + l.socket + l.conn,
            d.total()
        );
    }

    #[test]
    fn json_round_trip() {
        let d = DropStats {
            wire: 8,
            gro_overflow: 1,
            socket_queue: 2,
            ..DropStats::new()
        };
        let v = d.to_value();
        assert_eq!(DropStats::from_value(&v).unwrap(), d);
        let o = DropStats {
            switch_buffer: 2,
            handshake_abort: 3,
            accept_queue: 4,
            conn_memory: 5,
            ..d
        };
        assert_eq!(DropStats::from_value(&o.to_value()).unwrap(), o);
    }

    /// Pre-overload/pre-fabric reports must not grow keys: connection-level
    /// and fabric classes serialize only when nonzero.
    #[test]
    fn zero_conn_classes_stay_invisible() {
        let json = DropStats::new().to_value().compact();
        assert!(!json.contains("handshake_abort"));
        assert!(!json.contains("accept_queue"));
        assert!(!json.contains("conn_memory"));
        assert!(!json.contains("switch_buffer"));
        assert!(json.contains("socket_queue"), "legacy keys always present");
    }
}
