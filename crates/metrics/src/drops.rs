//! Drop taxonomy: where every lost frame died.
//!
//! The paper reports only an aggregate packet-drop rate (Fig. 9). For fault
//! injection we need attribution: a frame can be lost on the wire, at the
//! NIC for want of Rx descriptors, at the softirq backlog (GRO overflow,
//! the `netdev_max_backlog` analogue), at the socket for arriving outside
//! the receive window, or because the page pool could not back a descriptor
//! replenish. Every dropped frame is charged to exactly one bucket, so
//! `total()` equals the true number of frames lost end-to-end and resilience
//! experiments can verify full accounting.

use crate::json::{obj, JsonError, Value};

/// [`DropStats`] re-grouped by observing layer (see [`DropStats::by_layer`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LayerDrops {
    /// Drops the link itself observed.
    pub wire: u64,
    /// Drops the NIC observed (descriptor or page-pool exhaustion).
    pub nic: u64,
    /// Drops the softirq backlog cap observed.
    pub backlog: u64,
    /// Drops the socket observed (duplicate data discarded).
    pub socket: u64,
}

/// Frames dropped, attributed to the layer that dropped them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DropStats {
    /// Lost in the network (random loss, burst loss, link flap).
    pub wire: u64,
    /// Arrived at the NIC but no free Rx descriptor (organic exhaustion
    /// under incast, or injected ring-exhaustion faults).
    pub rx_ring: u64,
    /// Rx descriptor available but the per-core softirq backlog was full
    /// (GRO/backlog overflow).
    pub gro_overflow: u64,
    /// Delivered to TCP but outside the receive window (socket queue full
    /// from the sender's point of view).
    pub socket_queue: u64,
    /// Rx descriptor replenish failed because the page pool was exhausted
    /// (injected allocation-failure faults).
    pub pool: u64,
}

impl DropStats {
    /// All-zero stats.
    pub const fn new() -> Self {
        DropStats {
            wire: 0,
            rx_ring: 0,
            gro_overflow: 0,
            socket_queue: 0,
            pool: 0,
        }
    }

    /// Total frames lost across every attribution point.
    pub fn total(&self) -> u64 {
        self.wire + self.rx_ring + self.gro_overflow + self.socket_queue + self.pool
    }

    /// Merge another sample set into this one.
    pub fn merge(&mut self, other: DropStats) {
        self.wire += other.wire;
        self.rx_ring += other.rx_ring;
        self.gro_overflow += other.gro_overflow;
        self.socket_queue += other.socket_queue;
        self.pool += other.pool;
    }

    /// Bucket-wise `self - baseline`, used to exclude warmup drops from the
    /// measurement window (saturating, so a never-reset baseline is safe).
    pub fn since(&self, baseline: DropStats) -> DropStats {
        DropStats {
            wire: self.wire.saturating_sub(baseline.wire),
            rx_ring: self.rx_ring.saturating_sub(baseline.rx_ring),
            gro_overflow: self.gro_overflow.saturating_sub(baseline.gro_overflow),
            socket_queue: self.socket_queue.saturating_sub(baseline.socket_queue),
            pool: self.pool.saturating_sub(baseline.pool),
        }
    }

    /// The taxonomy re-grouped by the *layer* that observed each drop: the
    /// wire keeps its own counter, the NIC observes both descriptor and
    /// page-pool failures, the softirq backlog observes its cap, and the
    /// socket observes duplicate discards. The invariant auditor reconciles
    /// each group against the corresponding layer-local counters, proving
    /// every dropped frame was charged to exactly one bucket.
    pub fn by_layer(&self) -> LayerDrops {
        LayerDrops {
            wire: self.wire,
            nic: self.rx_ring + self.pool,
            backlog: self.gro_overflow,
            socket: self.socket_queue,
        }
    }

    /// Labelled `(bucket, count)` view in stable order.
    pub fn buckets(&self) -> [(&'static str, u64); 5] {
        [
            ("wire", self.wire),
            ("rx_ring", self.rx_ring),
            ("gro_overflow", self.gro_overflow),
            ("socket_queue", self.socket_queue),
            ("pool", self.pool),
        ]
    }

    pub(crate) fn to_value(self) -> Value {
        obj(vec![
            ("wire", Value::UInt(self.wire)),
            ("rx_ring", Value::UInt(self.rx_ring)),
            ("gro_overflow", Value::UInt(self.gro_overflow)),
            ("socket_queue", Value::UInt(self.socket_queue)),
            ("pool", Value::UInt(self.pool)),
        ])
    }

    pub(crate) fn from_value(v: &Value) -> Result<DropStats, JsonError> {
        Ok(DropStats {
            wire: v.get("wire")?.as_u64()?,
            rx_ring: v.get("rx_ring")?.as_u64()?,
            gro_overflow: v.get("gro_overflow")?.as_u64()?,
            socket_queue: v.get("socket_queue")?.as_u64()?,
            pool: v.get("pool")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_every_bucket() {
        let d = DropStats {
            wire: 1,
            rx_ring: 2,
            gro_overflow: 3,
            socket_queue: 4,
            pool: 5,
        };
        assert_eq!(d.total(), 15);
        assert_eq!(d.buckets().iter().map(|&(_, n)| n).sum::<u64>(), 15);
    }

    #[test]
    fn merge_and_since_are_inverse() {
        let mut a = DropStats {
            wire: 10,
            rx_ring: 5,
            ..DropStats::new()
        };
        let b = DropStats {
            wire: 3,
            pool: 7,
            ..DropStats::new()
        };
        a.merge(b);
        assert_eq!(a.wire, 13);
        assert_eq!(a.pool, 7);
        let delta = a.since(b);
        assert_eq!(delta.wire, 10);
        assert_eq!(delta.rx_ring, 5);
        assert_eq!(delta.pool, 0);
    }

    #[test]
    fn by_layer_partitions_every_bucket() {
        let d = DropStats {
            wire: 1,
            rx_ring: 2,
            gro_overflow: 3,
            socket_queue: 4,
            pool: 5,
        };
        let l = d.by_layer();
        assert_eq!(l.wire, 1);
        assert_eq!(l.nic, 7);
        assert_eq!(l.backlog, 3);
        assert_eq!(l.socket, 4);
        assert_eq!(l.wire + l.nic + l.backlog + l.socket, d.total());
    }

    #[test]
    fn json_round_trip() {
        let d = DropStats {
            wire: 8,
            gro_overflow: 1,
            socket_queue: 2,
            ..DropStats::new()
        };
        let v = d.to_value();
        assert_eq!(DropStats::from_value(&v).unwrap(), d);
    }
}
