//! # hns-metrics — measurement machinery for the reproduction
//!
//! The paper classifies every CPU cycle the kernel spends into eight
//! categories (Table 1) and reports, per experiment:
//!
//! * throughput and throughput-per-core,
//! * sender/receiver CPU utilization,
//! * per-category CPU-cycle breakdowns,
//! * L3/DCA cache miss rates during data copy,
//! * NAPI→data-copy latency distributions (Fig. 3f),
//! * post-GRO skb size distributions (Fig. 8c).
//!
//! This crate provides those accumulators plus text-table formatting used by
//! the figure benches, and JSON export for EXPERIMENTS.md tooling.

pub mod csv;
pub mod drops;
pub mod json;
pub mod report;
pub mod table;
pub mod taxonomy;
pub mod util;

pub use csv::reports_to_csv;
pub use drops::{DropStats, LayerDrops};
pub use report::{
    CacheStats, CapacitySummary, ConnSummary, LatencyStats, MonitorStage, MonitorSummary, Report,
    SideReport, StageLatency,
};
pub use table::{
    format_breakdown_table, format_capacity_table, format_conn_table, format_gbps,
    format_monitor_table, format_series_table, format_stage_table,
};
pub use taxonomy::{Category, CycleBreakdown, ALL_CATEGORIES};
pub use util::CoreUsage;
