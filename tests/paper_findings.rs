//! Integration tests asserting the paper's headline findings hold in the
//! reproduction — the *shapes* (who wins, what dominates, direction of
//! effects), not exact Gbps values.
//!
//! Tests use shortened measurement windows; the full-length numbers are
//! produced by `cargo bench` and recorded in EXPERIMENTS.md.

use hostnet::building_blocks::stack::config::RcvBufPolicy;
use hostnet::{Category, Experiment, OptLevel, Placement, ScenarioKind};

fn quick(kind: ScenarioKind) -> Experiment {
    Experiment::new(kind).quick()
}

/// §3.1: "A single core is no longer sufficient" — a single flow with all
/// optimizations cannot reach line rate, landing near 40Gbps per core.
#[test]
fn single_core_cannot_do_line_rate() {
    let r = quick(ScenarioKind::Single).run();
    assert!(
        r.thpt_per_core_gbps < 70.0,
        "single core should be far from 100Gbps, got {:.1}",
        r.thpt_per_core_gbps
    );
    assert!(
        r.thpt_per_core_gbps > 25.0,
        "all-opts single flow should still be tens of Gbps, got {:.1}",
        r.thpt_per_core_gbps
    );
}

/// §3.1: data copy dominates the receiver with all optimizations on.
#[test]
fn data_copy_dominates_receiver() {
    let r = quick(ScenarioKind::Single).run();
    assert_eq!(r.receiver.breakdown.dominant(), Some(Category::DataCopy));
    let f = r.receiver.breakdown.fraction(Category::DataCopy);
    assert!((0.35..0.70).contains(&f), "copy fraction {f:.2}");
}

/// §3.1 / Fig. 3b: the receiver is the bottleneck at every optimization
/// level.
#[test]
fn receiver_is_bottleneck_at_every_level() {
    for level in OptLevel::ALL {
        let r = quick(ScenarioKind::Single).at_level(level).run();
        assert!(
            r.receiver.cores_used > r.sender.cores_used,
            "{}: rcv {:.2} vs snd {:.2}",
            level.label(),
            r.receiver.cores_used,
            r.sender.cores_used
        );
    }
}

/// Fig. 3a: each optimization level improves throughput-per-core.
#[test]
fn optimizations_stack_up() {
    let mut last = 0.0;
    for level in OptLevel::ALL {
        let r = quick(ScenarioKind::Single).at_level(level).run();
        assert!(
            r.thpt_per_core_gbps > last,
            "{} did not improve: {:.2} after {:.2}",
            level.label(),
            r.thpt_per_core_gbps,
            last
        );
        last = r.thpt_per_core_gbps;
    }
}

/// §3.1: even a single flow sees ~49% DCA misses under default
/// auto-tuning.
#[test]
fn single_flow_high_cache_miss() {
    let r = quick(ScenarioKind::Single).run();
    let miss = r.receiver.cache.miss_rate();
    assert!((0.30..0.70).contains(&miss), "miss = {miss:.2}");
}

/// Fig. 3e: larger rings and larger buffers both raise the miss rate.
#[test]
fn ring_and_buffer_raise_misses() {
    let small = quick(ScenarioKind::Single)
        .configure(|c| {
            c.stack.rx_descriptors = 128;
            c.stack.rcvbuf = RcvBufPolicy::Fixed(1600 * 1024);
        })
        .run();
    let big_buffer = quick(ScenarioKind::Single)
        .configure(|c| {
            c.stack.rx_descriptors = 128;
            c.stack.rcvbuf = RcvBufPolicy::Fixed(12800 * 1024);
        })
        .run();
    let big_ring = quick(ScenarioKind::Single)
        .configure(|c| {
            c.stack.rx_descriptors = 4096;
            c.stack.rcvbuf = RcvBufPolicy::Fixed(1600 * 1024);
        })
        .run();
    assert!(
        big_buffer.receiver.cache.miss_rate() > small.receiver.cache.miss_rate() + 0.2,
        "buffer: {:.2} vs {:.2}",
        big_buffer.receiver.cache.miss_rate(),
        small.receiver.cache.miss_rate()
    );
    assert!(
        big_ring.receiver.cache.miss_rate() > small.receiver.cache.miss_rate() + 0.05,
        "ring: {:.2} vs {:.2}",
        big_ring.receiver.cache.miss_rate(),
        small.receiver.cache.miss_rate()
    );
    assert!(big_buffer.thpt_per_core_gbps < small.thpt_per_core_gbps);
}

/// Fig. 3f: NAPI→copy latency rises steeply with the receive buffer.
#[test]
fn latency_rises_with_buffer() {
    let small = quick(ScenarioKind::Single)
        .configure(|c| c.stack.rcvbuf = RcvBufPolicy::Fixed(400 * 1024))
        .run();
    let large = quick(ScenarioKind::Single)
        .configure(|c| c.stack.rcvbuf = RcvBufPolicy::Fixed(12800 * 1024))
        .run();
    assert!(
        large.napi_to_copy.avg_us > 5.0 * small.napi_to_copy.avg_us,
        "small {:.1}us vs large {:.1}us",
        small.napi_to_copy.avg_us,
        large.napi_to_copy.avg_us
    );
    assert!(large.napi_to_copy.p99_us >= large.napi_to_copy.avg_us);
}

/// Fig. 4: NIC-remote NUMA placement costs ~20% for long flows.
#[test]
fn numa_remote_hurts_long_flows() {
    let local = quick(ScenarioKind::Single).run();
    let remote = quick(ScenarioKind::SingleNicRemote).run();
    let drop = 1.0 - remote.thpt_per_core_gbps / local.thpt_per_core_gbps;
    assert!(
        (0.05..0.40).contains(&drop),
        "NUMA-remote drop = {:.2} (local {:.1}, remote {:.1})",
        drop,
        local.thpt_per_core_gbps,
        remote.thpt_per_core_gbps
    );
    assert!(remote.receiver.cache.miss_rate() > 0.9, "no DCA remotely");
}

/// §3.2: one-to-one throughput-per-core decays with flow count even
/// though every flow has a dedicated core.
#[test]
fn one_to_one_efficiency_decays() {
    let one = quick(ScenarioKind::Single).run();
    let eight = quick(ScenarioKind::OneToOne { flows: 8 }).run();
    assert!(
        eight.thpt_per_core_gbps < 0.75 * one.thpt_per_core_gbps,
        "8 flows: {:.1} vs 1 flow {:.1}",
        eight.thpt_per_core_gbps,
        one.thpt_per_core_gbps
    );
    // Link saturates.
    assert!(eight.total_gbps > 90.0, "total {:.1}", eight.total_gbps);
    // Scheduling overhead appears once cores idle between bursts (§3.2).
    assert!(
        eight.receiver.breakdown.fraction(Category::Sched)
            > one.receiver.breakdown.fraction(Category::Sched)
    );
    // Memory management overhead *shrinks* (better page recycling).
    assert!(
        eight.receiver.breakdown.fraction(Category::Memory)
            < one.receiver.breakdown.fraction(Category::Memory)
    );
}

/// §3.3: incast drops throughput-per-core ~19% at 8 flows via cache
/// pollution.
#[test]
fn incast_pollutes_cache() {
    // Full-length windows: 8 incast flows need longer than quick() to
    // settle their buffer auto-tuning into steady state.
    let one = Experiment::new(ScenarioKind::Single).run();
    let eight = Experiment::new(ScenarioKind::Incast { flows: 8 }).run();
    assert!(
        eight.receiver.cache.miss_rate() > one.receiver.cache.miss_rate() + 0.2,
        "incast miss {:.2} vs single {:.2}",
        eight.receiver.cache.miss_rate(),
        one.receiver.cache.miss_rate()
    );
    let drop = 1.0 - eight.thpt_per_core_gbps / one.thpt_per_core_gbps;
    assert!((0.05..0.45).contains(&drop), "drop = {drop:.2}");
}

/// §3.4: the sender-side pipeline is roughly 2× more CPU-efficient than
/// the receiver's.
#[test]
fn sender_pipeline_more_efficient() {
    let outcast = quick(ScenarioKind::Outcast { flows: 8 }).run();
    let incast = quick(ScenarioKind::Incast { flows: 8 }).run();
    let per_sender_core = outcast.total_gbps / outcast.sender.cores_used;
    let per_receiver_core = incast.total_gbps / incast.receiver.cores_used;
    let ratio = per_sender_core / per_receiver_core;
    assert!(
        (1.5..3.5).contains(&ratio),
        "sender/receiver efficiency ratio = {ratio:.2} \
         ({per_sender_core:.1} vs {per_receiver_core:.1})"
    );
}

/// §3.5: all-to-all shrinks post-GRO skb sizes (Fig. 8c) and decays
/// throughput-per-core.
#[test]
fn all_to_all_shrinks_skbs() {
    let single = quick(ScenarioKind::Single).run();
    let a2a = quick(ScenarioKind::AllToAll { x: 8 }).run();
    assert!(
        a2a.avg_skb_bytes < 0.5 * single.avg_skb_bytes,
        "a2a skb {:.0}B vs single {:.0}B",
        a2a.avg_skb_bytes,
        single.avg_skb_bytes
    );
    assert!(a2a.thpt_per_core_gbps < 0.8 * single.thpt_per_core_gbps);
}

/// §3.6: loss costs retransmissions; heavy loss reduces total throughput;
/// light loss slightly *helps* cache hit rates.
#[test]
fn loss_effects() {
    let clean = quick(ScenarioKind::Single).run();
    let light = quick(ScenarioKind::Single)
        .configure(|c| c.link.loss = hns_faults::LossModel::uniform(1.5e-4))
        .run();
    let heavy = quick(ScenarioKind::Single)
        .configure(|c| c.link.loss = hns_faults::LossModel::uniform(1.5e-2))
        .run();
    assert!(heavy.retransmissions > 0);
    // SACK-assisted recovery keeps the throughput cost of 1.5% loss
    // modest, but it must still be visible.
    assert!(
        heavy.total_gbps < 0.95 * clean.total_gbps,
        "heavy {:.1} vs clean {:.1}",
        heavy.total_gbps,
        clean.total_gbps
    );
    // Light loss: miss rate does not get worse (the paper observed it
    // improving 48% → 37%).
    assert!(
        light.receiver.cache.miss_rate() <= clean.receiver.cache.miss_rate() + 0.02,
        "light-loss miss {:.2} vs clean {:.2}",
        light.receiver.cache.miss_rate(),
        clean.receiver.cache.miss_rate()
    );
    // TCP processing share grows under heavy loss on both sides.
    assert!(
        heavy.receiver.breakdown.fraction(Category::TcpIp)
            > clean.receiver.breakdown.fraction(Category::TcpIp)
    );
}

/// §3.7: 4KB RPCs are not copy-dominated; 64KB RPCs are.
#[test]
fn rpc_size_shifts_bottleneck() {
    let tiny = quick(ScenarioKind::RpcIncast {
        clients: 16,
        size: 4 * 1024,
        server: Placement::NicLocalFirst,
    })
    .run();
    let big = quick(ScenarioKind::RpcIncast {
        clients: 16,
        size: 64 * 1024,
        server: Placement::NicLocalFirst,
    })
    .run();
    assert!(tiny.rpcs_completed > 0 && big.rpcs_completed > 0);
    assert_ne!(tiny.receiver.breakdown.dominant(), Some(Category::DataCopy));
    assert!(
        big.receiver.breakdown.fraction(Category::DataCopy)
            > 2.0 * tiny.receiver.breakdown.fraction(Category::DataCopy)
    );
    assert!(big.thpt_per_core_gbps > 1.5 * tiny.thpt_per_core_gbps);
}

/// §3.7 / Fig. 10c: NUMA placement barely matters for 4KB RPCs.
#[test]
fn numa_placement_marginal_for_small_rpcs() {
    let local = quick(ScenarioKind::RpcIncast {
        clients: 16,
        size: 4096,
        server: Placement::NicLocalFirst,
    })
    .run();
    let remote = quick(ScenarioKind::RpcIncast {
        clients: 16,
        size: 4096,
        server: Placement::NicRemote,
    })
    .run();
    let delta =
        (local.thpt_per_core_gbps - remote.thpt_per_core_gbps).abs() / local.thpt_per_core_gbps;
    assert!(delta < 0.10, "4KB RPC NUMA delta = {delta:.2}");
    // But the *cache miss rate* is much higher remotely — the bytes just
    // don't matter at this size.
    assert!(remote.receiver.cache.miss_rate() > local.receiver.cache.miss_rate() + 0.2);
}

/// §3.7 / Fig. 11: mixing long and short flows on one core hurts both.
#[test]
fn mixing_long_and_short_is_harmful() {
    let pure = quick(ScenarioKind::Mixed {
        shorts: 0,
        size: 4096,
    })
    .run();
    let mixed = quick(ScenarioKind::Mixed {
        shorts: 16,
        size: 4096,
    })
    .run();
    let long_before = pure.flow_gbps(0);
    let long_after = mixed.flow_gbps(0);
    assert!(
        long_after < 0.8 * long_before,
        "long flow {long_before:.1} → {long_after:.1}"
    );
    assert!(mixed.rpcs_completed > 0);
}

/// §3.8: disabling DCA costs ~19% throughput-per-core.
#[test]
fn dca_disabled_hurts() {
    let default = quick(ScenarioKind::Single).run();
    let no_dca = quick(ScenarioKind::Single)
        .configure(|c| c.stack.dca = false)
        .run();
    let drop = 1.0 - no_dca.thpt_per_core_gbps / default.thpt_per_core_gbps;
    assert!((0.05..0.35).contains(&drop), "DCA-off drop = {drop:.2}");
    assert!(no_dca.receiver.cache.miss_rate() > 0.99);
}

/// §3.9: the IOMMU costs ~26% and pushes memory management toward ~30% of
/// receiver cycles.
#[test]
fn iommu_inflates_memory_management() {
    let default = quick(ScenarioKind::Single).run();
    let iommu = quick(ScenarioKind::Single)
        .configure(|c| c.stack.iommu = true)
        .run();
    let drop = 1.0 - iommu.thpt_per_core_gbps / default.thpt_per_core_gbps;
    assert!((0.10..0.45).contains(&drop), "IOMMU drop = {drop:.2}");
    let mem = iommu.receiver.breakdown.fraction(Category::Memory);
    assert!((0.20..0.60).contains(&mem), "IOMMU rx memory = {mem:.2}");
    assert!(mem > 1.5 * default.receiver.breakdown.fraction(Category::Memory));
}

/// §4: the datapath architectures order by how much host work each one
/// sheds — in-kernel pays the full taxonomy, TOE keeps copy + syscall +
/// descriptors, bypass keeps descriptors alone — so goodput-per-host-core
/// orders the other way around.
#[test]
fn offload_datapaths_order_by_remaining_host_work() {
    use hostnet::building_blocks::stack::DatapathKind;
    let per_core = |kind: DatapathKind| {
        quick(ScenarioKind::Single)
            .configure(|c| c.datapath = kind)
            .run()
            .thpt_per_core_gbps
    };
    let ik = per_core(DatapathKind::InKernel);
    let toe = per_core(DatapathKind::ToeOffload);
    let byp = per_core(DatapathKind::UserBypass);
    assert!(
        byp > toe && toe > ik,
        "bypass {byp:.1} / toe {toe:.1} / inkernel {ik:.1}"
    );
}

/// §4: TOE reassembles in hardware regardless of the host GRO knob — at
/// the paper's no-opt level the in-kernel stack delivers MTU-sized skbs
/// while the TOE still hands the host large aggregates.
#[test]
fn toe_aggregates_even_at_no_opt() {
    use hostnet::building_blocks::stack::DatapathKind;
    let ik = quick(ScenarioKind::Single).at_level(OptLevel::NoOpt).run();
    let toe = quick(ScenarioKind::Single)
        .at_level(OptLevel::NoOpt)
        .configure(|c| c.datapath = DatapathKind::ToeOffload)
        .run();
    // Without TSO the sender emits MTU frames, so reassembly is bounded
    // by NAPI batch occupancy — still roughly 2× the in-kernel skbs.
    assert!(
        toe.avg_skb_bytes > 1.5 * ik.avg_skb_bytes,
        "toe skb {:.0}B vs no-opt in-kernel {:.0}B",
        toe.avg_skb_bytes,
        ik.avg_skb_bytes
    );
    assert!(
        toe.thpt_per_core_gbps > 2.0 * ik.thpt_per_core_gbps,
        "offload should dwarf the unoptimized stack: toe {:.1} vs {:.1}",
        toe.thpt_per_core_gbps,
        ik.thpt_per_core_gbps
    );
}

/// §3.10: congestion control choice barely moves throughput-per-core, but
/// BBR pays extra sender-side scheduling for pacing.
#[test]
fn congestion_control_is_not_the_bottleneck() {
    use hostnet::building_blocks::proto::cc::CcAlgo;
    let cubic = quick(ScenarioKind::Single).run();
    let bbr = quick(ScenarioKind::Single)
        .configure(|c| c.stack.cc = CcAlgo::Bbr)
        .run();
    let dctcp = quick(ScenarioKind::Single)
        .configure(|c| c.stack.cc = CcAlgo::Dctcp)
        .run();
    for (name, r) in [("bbr", &bbr), ("dctcp", &dctcp)] {
        let delta =
            (r.thpt_per_core_gbps - cubic.thpt_per_core_gbps).abs() / cubic.thpt_per_core_gbps;
        assert!(delta < 0.25, "{name} delta = {delta:.2}");
    }
    assert!(
        bbr.sender.breakdown.fraction(Category::Sched)
            > cubic.sender.breakdown.fraction(Category::Sched),
        "BBR should pay for pacing: {:.3} vs {:.3}",
        bbr.sender.breakdown.fraction(Category::Sched),
        cubic.sender.breakdown.fraction(Category::Sched)
    );
}
