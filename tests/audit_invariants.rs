//! End-to-end tests of the invariant auditor (`Experiment::audited`) and
//! the differential config fuzzer (`hostnet audit`).
//!
//! The auditor must (a) stay silent on every healthy scenario — including
//! churn, loss, and fault-window runs — and (b) catch a deliberately broken
//! ledger. `SimConfig::inject_rx_leak` consumes one Rx descriptor at the
//! end of warmup without delivering its frame, exactly the kind of
//! single-counter drift the conservation laws exist to catch; the fuzzer's
//! bisection must then shrink a multi-delta failing config down to that
//! one delta.

use hostnet::audit::{bisect_case, check_case, run_audit};
use hostnet::building_blocks::faults::LossModel;
use hostnet::building_blocks::stack::RunErrorKind;
use hostnet::{AuditOptions, Experiment, FieldDelta, Placement, Property, ScenarioKind};

fn audited(scenario: ScenarioKind) -> Experiment {
    Experiment::new(scenario).quick().audited()
}

#[test]
fn audited_scenarios_stay_silent() {
    let scenarios = [
        ScenarioKind::Single,
        ScenarioKind::SingleNicRemote,
        ScenarioKind::OneToOne { flows: 2 },
        ScenarioKind::Incast { flows: 4 },
        ScenarioKind::RpcIncast {
            clients: 4,
            size: 4096,
            server: Placement::NicLocalFirst,
        },
        ScenarioKind::Mixed {
            shorts: 2,
            size: 4096,
        },
        ScenarioKind::OpenLoop {
            clients: 2,
            size: 16 * 1024,
            rate_rps: 20_000.0,
        },
        ScenarioKind::Churn {
            churn: hostnet::building_blocks::workload::churn_open_loop(100_000.0),
        },
        ScenarioKind::Churn {
            churn: hostnet::building_blocks::workload::churn_short_rpc(50_000.0, 4096),
        },
    ];
    for s in scenarios {
        let r = audited(s)
            .try_run()
            .unwrap_or_else(|e| panic!("{}: audited run tripped: {e}", s.label()));
        assert!(r.delivered_bytes > 0 || r.conn.is_some());
    }
}

#[test]
fn audited_capacity_runs_stay_silent() {
    // Every admission policy under real overload (250 clients push the
    // depth-128 accept queue past its bound at quick windows): the
    // accept-queue, connection-memory, and abort-reconciliation ledgers
    // must all balance at teardown.
    use hostnet::building_blocks::conn::AdmissionPolicy;
    for policy in [
        AdmissionPolicy::Drop,
        AdmissionPolicy::Queue,
        AdmissionPolicy::Shed,
    ] {
        let churn = hostnet::building_blocks::workload::churn_capacity(250, policy);
        let r = audited(ScenarioKind::Churn { churn })
            .try_run()
            .unwrap_or_else(|e| panic!("audited capacity/{} tripped: {e}", policy.label()));
        let cap = r
            .capacity
            .expect("overload runs must carry a capacity summary");
        assert_eq!(cap.policy, policy.label());
        assert!(
            cap.accept_overflows > 0,
            "capacity/{}: 250 clients should overflow the depth-128 queue",
            policy.label()
        );
    }
}

#[test]
fn audited_overload_composes_with_wire_loss() {
    // Overload + lossy handshakes: SYN retransmissions interleave with
    // admission drops/cookies/sheds, and the ledgers must still close.
    use hostnet::building_blocks::conn::AdmissionPolicy;
    let churn = hostnet::building_blocks::workload::churn_capacity(250, AdmissionPolicy::Queue);
    let r = audited(ScenarioKind::Churn { churn })
        .configure(|c| c.link.loss = LossModel::uniform(0.002))
        .try_run()
        .expect("lossy overload run must still balance its ledgers");
    let c = r.conn.expect("churn runs carry a conn summary");
    assert!(c.retransmits > 0, "the loss should hit some handshakes");
    assert!(r.capacity.is_some());
}

#[test]
fn audited_run_tolerates_loss_drops_and_faults() {
    // Wire loss + a tight backlog cap + an Rx-ring exhaustion window: every
    // drop bucket gets exercised, and the teardown reconciliation against
    // the drop taxonomy must still balance.
    use hostnet::building_blocks::faults::{PhaseSchedule, RingExhaust};
    use hostnet::building_blocks::sim::Duration;
    let r = audited(ScenarioKind::Incast { flows: 4 })
        .configure(|c| {
            c.link.loss = LossModel::uniform(0.001);
            c.max_backlog = 64;
            c.faults.ring_exhaust = Some(RingExhaust {
                window: PhaseSchedule::once(Duration::from_millis(6), Duration::from_millis(1)),
                host: 1,
            });
        })
        .try_run()
        .expect("lossy faulted run must still balance its ledgers");
    assert!(
        r.drops.total() > 0,
        "the config should actually drop frames"
    );
}

#[test]
fn injected_rx_leak_is_caught_by_the_auditor() {
    let err = audited(ScenarioKind::Single)
        .configure(|c| c.inject_rx_leak = true)
        .try_run()
        .expect_err("a leaked descriptor must trip the auditor");
    assert_eq!(err.kind, RunErrorKind::InvariantViolation);
    assert!(
        err.detail.contains("arrival-attribution"),
        "unexpected detail: {}",
        err.detail
    );
}

#[test]
fn injected_rx_leak_is_invisible_without_audit() {
    // Control: the same broken world passes when the auditor is off,
    // proving detection comes from the conservation checks and not from
    // the leak disturbing the run.
    let r = Experiment::new(ScenarioKind::Single)
        .quick()
        .configure(|c| c.inject_rx_leak = true)
        .try_run()
        .expect("one consumed descriptor must not wedge an unaudited run");
    assert!(r.total_gbps > 5.0);
}

#[test]
fn check_case_flags_the_leak_delta() {
    assert!(check_case(ScenarioKind::Single, Property::Conservation, &[]).is_ok());
    let err = check_case(
        ScenarioKind::Single,
        Property::Conservation,
        &[FieldDelta::InjectRxLeak],
    )
    .expect_err("leak delta must fail the conservation property");
    assert!(err.contains("invariant-violation"), "got: {err}");
}

#[test]
fn bisection_shrinks_to_the_single_culprit_delta() {
    // Three deltas, two innocent: the fuzzer's bisection must re-run the
    // case with subsets and come back with exactly the leak.
    let deltas = [
        FieldDelta::NapiBatch(32),
        FieldDelta::LinkGbps(40),
        FieldDelta::InjectRxLeak,
    ];
    let minimal = bisect_case(ScenarioKind::Single, Property::Conservation, &deltas);
    assert_eq!(minimal, vec![FieldDelta::InjectRxLeak]);
}

#[test]
fn fuzzer_smoke_sweep_is_clean() {
    // A short in-process sweep of the real fuzzer entry point; the CI job
    // runs the full 25/200-case sweeps through the CLI.
    let outcome = run_audit(&AuditOptions {
        runs: 4,
        seed: 1,
        out_dir: None,
        progress: false,
    });
    assert_eq!(outcome.runs, 4);
    assert!(outcome.ok(), "failures: {:?}", outcome.failures);
}

/// Fabric incast at fan-in `n`, fig_incast knobs (shared 256KB switch
/// buffer, 4 ECMP uplinks, optional 64KB ECN threshold).
fn audited_incast(n: u16, ecn: bool) -> Experiment {
    use hostnet::building_blocks::stack::FabricConfig;
    audited(ScenarioKind::FabricIncast { senders: n }).configure(move |c| {
        let mut f = FabricConfig::neutral((n + 1).max(2));
        f.uplinks = 4;
        f.buffer_bytes = 256 * 1024;
        f.ecn_threshold_bytes = if ecn { Some(64 * 1024) } else { None };
        c.fabric = Some(f);
    })
}

#[test]
fn audited_incast_fan_in_degrees_stay_silent() {
    // Frame/drop/cycle conservation must hold with switch-buffer drops
    // present: every fan-in degree of the fig_incast grid, ECN off (drops
    // happen) and on (marks happen), under the full auditor.
    for n in [1, 2, 4, 8, 16] {
        for ecn in [false, true] {
            let r = audited_incast(n, ecn)
                .try_run()
                .unwrap_or_else(|e| panic!("incast {n}s ecn={ecn}: auditor tripped: {e}"));
            assert!(
                r.total_gbps > 5.0,
                "incast {n}s ecn={ecn}: goodput collapsed to {:.2}",
                r.total_gbps
            );
        }
    }
}

#[test]
fn two_sender_incast_does_not_livelock() {
    // Regression: a min-cwnd sender whose final in-order segment fell
    // under the every-second-MSS delayed-ACK threshold used to wait out a
    // full RTO per segment (no delack timer), which re-collapsed cwnd
    // every cycle — one flow of the 2-sender fan-in wedged at ~0 goodput
    // with zero drops. The delack flush timer plus hole-quickack must keep
    // both flows moving.
    let r = audited_incast(2, false).try_run().expect("clean audit");
    assert!(
        r.total_gbps > 50.0,
        "2-sender incast goodput {:.2} Gbps — delack livelock is back?",
        r.total_gbps
    );
    let min = r.per_flow_bytes.iter().map(|&(_, b)| b).min().unwrap();
    assert!(
        min > 0,
        "a starved flow delivered nothing in the window: {:?}",
        r.per_flow_bytes
    );
}

#[test]
fn audited_mixed_tenant_fabric_stays_silent() {
    use hostnet::building_blocks::stack::FabricConfig;
    let r = audited(ScenarioKind::FabricMixed {
        longs: 3,
        shorts: 2,
        size: 4096,
    })
    .configure(|c| {
        let mut f = FabricConfig::neutral(5);
        f.uplinks = 2;
        f.buffer_bytes = 512 * 1024;
        c.fabric = Some(f);
    })
    .try_run()
    .expect("mixed-tenant fabric run must stay silent under audit");
    assert!(r.total_gbps > 1.0);
}
