//! Integration tests for the paper's §4 "future directions", implemented
//! as simulator features: zero-copy datapaths, offload/bypass datapath
//! backends, application-aware scheduling, and open-loop latency
//! behaviour.

use hostnet::building_blocks::stack::DatapathKind;
use hostnet::{Category, Experiment, ScenarioKind};

/// §4: receiver-side zero copy removes the dominant overhead — the paper
/// projects large gains because "receiver is likely to be the throughput
/// bottleneck".
#[test]
fn zerocopy_rx_removes_copy_and_lifts_throughput() {
    let base = Experiment::new(ScenarioKind::Single).quick().run();
    let zc = Experiment::new(ScenarioKind::Single)
        .configure(|c| c.stack.zerocopy_rx = true)
        .quick()
        .run();
    assert_eq!(
        zc.receiver.breakdown[Category::DataCopy],
        0,
        "zero-copy receive must not copy"
    );
    assert!(
        zc.thpt_per_core_gbps > 1.3 * base.thpt_per_core_gbps,
        "zc {:.1} vs base {:.1}",
        zc.thpt_per_core_gbps,
        base.thpt_per_core_gbps
    );
}

/// §4: sender-side zero copy approaches the paper's "~100Gbps of
/// throughput-per-core" projection on the outcast pattern.
#[test]
fn zerocopy_tx_approaches_100g_per_sender_core() {
    let r = Experiment::new(ScenarioKind::Outcast { flows: 8 })
        .configure(|c| c.stack.zerocopy_tx = true)
        .run();
    let per_sender = r.total_gbps / r.sender.cores_used.max(1e-9);
    assert!(
        per_sender > 85.0,
        "sender-side zero-copy should near 100Gbps/core, got {per_sender:.1}"
    );
}

/// Zero-copy on both sides: copies vanish from both breakdowns and the
/// wire (or remaining per-frame costs) becomes the limit.
#[test]
fn zerocopy_both_sides() {
    let r = Experiment::new(ScenarioKind::Single)
        .configure(|c| {
            c.stack.zerocopy_tx = true;
            c.stack.zerocopy_rx = true;
        })
        .quick()
        .run();
    assert_eq!(r.receiver.breakdown[Category::DataCopy], 0);
    assert_eq!(r.sender.breakdown[Category::DataCopy], 0);
    assert!(r.total_gbps > 40.0, "got {:.1}", r.total_gbps);
}

/// §4: a TCP-offload NIC moves protocol, skb and memory management
/// on-NIC; what remains on the host is exactly the copy + syscall +
/// descriptor residue the paper predicts — and with the protocol gone,
/// the data copy towers over everything else.
#[test]
fn toe_offload_leaves_copy_as_the_residue() {
    let base = Experiment::new(ScenarioKind::Single).quick().run();
    let toe = Experiment::new(ScenarioKind::Single)
        .configure(|c| c.datapath = DatapathKind::ToeOffload)
        .quick()
        .run();
    for cat in [Category::TcpIp, Category::SkbMgmt, Category::Memory] {
        assert_eq!(
            toe.receiver.breakdown[cat] + toe.sender.breakdown[cat],
            0,
            "{} must move on-NIC under TOE",
            cat.label()
        );
    }
    assert_eq!(toe.receiver.breakdown.dominant(), Some(Category::DataCopy));
    assert!(
        toe.thpt_per_core_gbps > 1.5 * base.thpt_per_core_gbps,
        "toe {:.1} vs in-kernel {:.1}",
        toe.thpt_per_core_gbps,
        base.thpt_per_core_gbps
    );
}

/// §4: kernel bypass beats every in-kernel variant — including both-sides
/// zero copy — because it also sheds syscalls, interrupts and the rest of
/// the stack, leaving only descriptor polling on a dedicated core.
#[test]
fn kernel_bypass_exceeds_every_in_kernel_variant() {
    let zc_both = Experiment::new(ScenarioKind::Single)
        .configure(|c| {
            c.stack.zerocopy_tx = true;
            c.stack.zerocopy_rx = true;
        })
        .quick()
        .run();
    let byp = Experiment::new(ScenarioKind::Single)
        .configure(|c| c.datapath = DatapathKind::UserBypass)
        .quick()
        .run();
    for side in [&byp.sender, &byp.receiver] {
        assert_eq!(side.breakdown[Category::DataCopy], 0, "bypass is zero-copy");
        assert_eq!(side.breakdown[Category::Etc], 0, "no syscalls, no IRQs");
        assert_eq!(
            side.breakdown[Category::TcpIp],
            0,
            "protocol in userspace lib"
        );
    }
    assert!(
        byp.thpt_per_core_gbps > zc_both.thpt_per_core_gbps,
        "bypass {:.1} should beat zero-copy in-kernel {:.1}",
        byp.thpt_per_core_gbps,
        zc_both.thpt_per_core_gbps
    );
}

/// Open-loop RPC: latency rises with offered load (the hockey-stick), and
/// throughput tracks the offered load while unsaturated.
#[test]
fn open_loop_latency_hockey_stick() {
    let light = Experiment::new(ScenarioKind::OpenLoop {
        clients: 8,
        size: 4096,
        rate_rps: 2_500.0, // 20k rps aggregate
    })
    .run();
    let heavy = Experiment::new(ScenarioKind::OpenLoop {
        clients: 8,
        size: 4096,
        rate_rps: 36_000.0, // 288k rps aggregate, near server capacity
    })
    .run();
    assert!(light.rpcs_completed > 0 && heavy.rpcs_completed > 0);
    assert!(
        heavy.rpc_latency.avg_us > 1.5 * light.rpc_latency.avg_us,
        "no hockey stick: light {:.1}us heavy {:.1}us",
        light.rpc_latency.avg_us,
        heavy.rpc_latency.avg_us
    );
    assert!(heavy.rpc_latency.p99_us > heavy.rpc_latency.avg_us);
    // Light load is essentially unqueued: round trip in the tens of µs.
    assert!(
        light.rpc_latency.avg_us < 50.0,
        "light-load latency {:.1}us",
        light.rpc_latency.avg_us
    );
}

/// Open-loop throughput matches the offered load when the server has
/// headroom (conservation of requests).
#[test]
fn open_loop_conserves_offered_load() {
    let r = Experiment::new(ScenarioKind::OpenLoop {
        clients: 4,
        size: 4096,
        rate_rps: 10_000.0,
    })
    .run();
    let achieved = r.rpcs_completed as f64 / 2.0 / r.window_secs;
    let offered = 4.0 * 10_000.0;
    let rel = (achieved - offered).abs() / offered;
    assert!(
        rel < 0.15,
        "achieved {achieved:.0} vs offered {offered:.0} (rel {rel:.2})"
    );
}
