//! Parallel sweeps must be byte-identical to sequential ones.
//!
//! Every sweep point is an independent deterministic run and `hns-par`
//! collects results in declared order, so the job count must never leak
//! into any output: not the reports' JSON, not the traced stage tables,
//! not the CLI's rendered bytes. These tests pin that contract for the
//! sweeps the issue calls out (fig. 3e's ring × buffer grid, fig. 13's
//! CC matrix, and the traced fig. 3g runs) and for the `hostnet
//! figures --jobs N` surface end to end.

use hostnet::building_blocks::core_figures as figures;

/// JSON-serialize every report of a sweep at the given job count.
fn sweep_json(jobs: usize, points: &[figures::SweepPoint]) -> Vec<String> {
    figures::run_sweep_with(jobs, points)
        .iter()
        .map(|r| r.to_json())
        .collect()
}

#[test]
fn fig03e_grid_is_jobs_invariant() {
    let seq = sweep_json(1, &figures::fig03e_points());
    let par = sweep_json(8, &figures::fig03e_points());
    assert_eq!(seq.len(), 24);
    assert_eq!(seq, par, "fig03e reports differ between --jobs 1 and 8");
}

#[test]
fn fig13_cc_matrix_is_jobs_invariant() {
    let seq = sweep_json(1, &figures::fig13_points());
    let par = sweep_json(8, &figures::fig13_points());
    assert_eq!(seq, par, "fig13 reports differ between --jobs 1 and 8");
}

#[test]
fn traced_fig03g_is_jobs_invariant() {
    // fig. 3g runs with the lifecycle tracer enabled; its stage-latency
    // percentiles ride in the report, so this also pins traced runs.
    let seq = sweep_json(1, &figures::fig03g_points());
    let par = sweep_json(8, &figures::fig03g_points());
    assert!(
        seq.iter().all(|j| j.contains("stage_latency")),
        "fig03g reports should carry traced stage latencies"
    );
    assert_eq!(
        seq, par,
        "traced fig03g reports differ between jobs 1 and 8"
    );
}

#[test]
fn fig05c_conn_rate_sweep_is_jobs_invariant() {
    // The churn engine's conn summary (rates, handshake percentiles,
    // epoll ratios) must not leak the job count either.
    let seq = sweep_json(1, &figures::fig05_conn_rate_points());
    let par = sweep_json(8, &figures::fig05_conn_rate_points());
    assert!(
        seq.iter().all(|j| j.contains("\"conn\"")),
        "churn reports should carry a conn summary"
    );
    assert_eq!(seq, par, "fig05c reports differ between --jobs 1 and 8");
}

#[test]
fn fig_capacity_sweep_is_jobs_invariant() {
    // The overload sweep's admission outcomes (cookies, sheds, accept
    // drops) and capacity summary must not leak the job count: think
    // times hash off connection ids, never a shared RNG stream.
    let seq = sweep_json(1, &figures::fig_capacity_points());
    let par = sweep_json(8, &figures::fig_capacity_points());
    assert!(
        seq.iter().all(|j| j.contains("\"capacity\"")),
        "overload reports should carry a capacity summary"
    );
    assert_eq!(
        seq, par,
        "fig_capacity reports differ between --jobs 1 and 8"
    );
}

#[test]
fn monitored_capacity_sweep_is_jobs_invariant() {
    // Streaming telemetry folds sketches at autotune ticks inside each
    // run; the per-stage quantiles and goodput envelope in the monitor
    // summary must not leak the job count either.
    use hostnet::building_blocks::monitor::MonitorConfig;
    use hostnet::building_blocks::sim::Duration;
    use hostnet::building_blocks::trace::TraceConfig;

    let points = || -> Vec<figures::SweepPoint> {
        figures::fig_capacity_points()
            .into_iter()
            .take(4)
            .map(|p| {
                p.configure(|c| {
                    c.monitor = Some(MonitorConfig {
                        interval: Duration::from_millis(2),
                        ..MonitorConfig::default()
                    });
                    c.trace = TraceConfig {
                        enabled: true,
                        sample_every: 8,
                        ..TraceConfig::DISABLED
                    };
                })
            })
            .collect()
    };
    let seq = sweep_json(1, &points());
    let par = sweep_json(8, &points());
    assert!(
        seq.iter().all(|j| j.contains("\"monitor\"")),
        "monitored reports should carry a monitor summary"
    );
    assert_eq!(
        seq, par,
        "monitored capacity reports differ between --jobs 1 and 8"
    );
}

#[test]
fn cli_figures_output_is_jobs_invariant() {
    let bin = env!("CARGO_BIN_EXE_hostnet");
    let run = |jobs: &str| {
        let out = std::process::Command::new(bin)
            .args(["figures", "fig13", "--csv", "--jobs", jobs])
            .output()
            .expect("spawn hostnet");
        assert!(out.status.success(), "hostnet figures --jobs {jobs} failed");
        out.stdout
    };
    let seq = run("1");
    let par = run("8");
    assert!(!seq.is_empty());
    assert_eq!(seq, par, "CLI output differs between --jobs 1 and --jobs 8");
}

#[test]
fn cli_capacity_output_is_jobs_invariant() {
    let bin = env!("CARGO_BIN_EXE_hostnet");
    let run = |jobs: &str| {
        let out = std::process::Command::new(bin)
            .args(["capacity", "--quick", "--csv", "--jobs", jobs])
            .output()
            .expect("spawn hostnet");
        assert!(
            out.status.success(),
            "hostnet capacity --jobs {jobs} failed"
        );
        out.stdout
    };
    let seq = run("1");
    let par = run("8");
    assert!(!seq.is_empty());
    assert_eq!(
        seq, par,
        "capacity CLI output differs between --jobs 1 and --jobs 8"
    );
}

#[test]
fn fig_incast_sweep_is_jobs_invariant() {
    // The fabric sweep adds ECMP uplink hashing and shared-buffer drop
    // ordering to the mix: the flow-keyed Fibonacci hash and the
    // event-ordered switch clocks must make every fan-in point
    // byte-identical whatever the job count.
    let seq = sweep_json(1, &figures::fig_incast_points());
    let par = sweep_json(4, &figures::fig_incast_points());
    assert_eq!(seq.len(), 10);
    assert!(
        seq.iter().any(|j| j.contains("switch_buffer")),
        "incast reports should carry switch-buffer drops"
    );
    assert_eq!(seq, par, "fig_incast reports differ between --jobs 1 and 4");
}
