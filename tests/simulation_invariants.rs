//! Cross-cutting invariants of the simulation itself: determinism,
//! conservation, and sanity bounds that must hold for *every* scenario.

use hostnet::building_blocks::faults::{
    CoreStall, LossModel, PhaseSchedule, PoolPressure, RingExhaust,
};
use hostnet::building_blocks::sim::Duration;
use hostnet::{Experiment, Report, ScenarioKind};
use proptest::prelude::*;

fn all_scenarios() -> Vec<ScenarioKind> {
    vec![
        ScenarioKind::Single,
        ScenarioKind::SingleNicRemote,
        ScenarioKind::OneToOne { flows: 4 },
        ScenarioKind::Incast { flows: 4 },
        ScenarioKind::Outcast { flows: 4 },
        ScenarioKind::AllToAll { x: 3 },
        ScenarioKind::RpcIncast {
            clients: 4,
            size: 4096,
            server: hostnet::Placement::NicLocalFirst,
        },
        ScenarioKind::Mixed {
            shorts: 2,
            size: 4096,
        },
    ]
}

fn run(kind: ScenarioKind, seed: u64) -> Report {
    Experiment::new(kind)
        .configure(|c| c.seed = seed)
        .quick()
        .run()
}

/// Same seed → bit-identical measurements, for every scenario.
#[test]
fn deterministic_across_all_scenarios() {
    for kind in all_scenarios() {
        let a = run(kind, 7);
        let b = run(kind, 7);
        assert_eq!(a.delivered_bytes, b.delivered_bytes, "{kind:?}");
        assert_eq!(a.receiver.breakdown, b.receiver.breakdown, "{kind:?}");
        assert_eq!(a.sender.breakdown, b.sender.breakdown, "{kind:?}");
        assert_eq!(a.retransmissions, b.retransmissions, "{kind:?}");
    }
}

/// Different seeds still produce valid (similar-magnitude) results.
#[test]
fn seed_changes_are_bounded() {
    let a = run(ScenarioKind::Single, 1);
    let b = run(ScenarioKind::Single, 999);
    let rel = (a.total_gbps - b.total_gbps).abs() / a.total_gbps;
    assert!(rel < 0.15, "seed sensitivity too high: {rel:.2}");
}

/// Physical sanity for every scenario: nothing beats the wire, CPU
/// utilizations are within core counts, fractions sum to 1.
#[test]
fn physical_bounds_hold_everywhere() {
    for kind in all_scenarios() {
        let r = run(kind, 3);
        assert!(
            r.total_gbps >= 0.0 && r.total_gbps < 100.0,
            "{kind:?}: {}",
            r.total_gbps
        );
        assert!(r.sender.cores_used <= 24.0 + 1e-6, "{kind:?}");
        assert!(r.receiver.cores_used <= 24.0 + 1e-6, "{kind:?}");
        for side in [&r.sender, &r.receiver] {
            let total = side.breakdown.total();
            if total > 0 {
                let s: f64 = hostnet::building_blocks::metrics::ALL_CATEGORIES
                    .iter()
                    .map(|&c| side.breakdown.fraction(c))
                    .sum();
                assert!((s - 1.0).abs() < 1e-9, "{kind:?}: fractions sum {s}");
            }
        }
        let miss = r.receiver.cache.miss_rate();
        assert!((0.0..=1.0).contains(&miss), "{kind:?}");
        // Per-flow bytes sum to the total delivered.
        let per_flow: u64 = r.per_flow_bytes.iter().map(|(_, b)| b).sum();
        assert_eq!(per_flow, r.delivered_bytes, "{kind:?}");
    }
}

/// Without loss injection nothing is dropped in-network. Retransmissions
/// may still occur — incast patterns legitimately overrun the Rx
/// descriptor ring — but only when ring drops actually happened.
#[test]
fn lossless_conservation() {
    for kind in all_scenarios() {
        let r = run(kind, 11);
        assert_eq!(r.wire_drops, 0, "{kind:?}");
        if r.ring_drops == 0 {
            // A handful of tail-loss-probe retransmissions are genuine
            // even without loss: TLP fires on delay-acked burst tails
            // (it beats the delayed-ACK timer in real kernels too). They
            // must stay rare.
            assert!(
                r.retransmissions < 100,
                "{kind:?}: {} spurious retransmissions",
                r.retransmissions
            );
        }
        assert!(r.delivered_bytes > 0, "{kind:?} moved no data");
    }
}

/// The measurement window is respected: doubling the window roughly
/// doubles delivered bytes (steady state), and throughput stays put.
#[test]
fn window_scaling_is_linear() {
    use hostnet::building_blocks::sim::Duration;
    let mut short = Experiment::new(ScenarioKind::Single);
    short.warmup = Duration::from_millis(10);
    short.measure = Duration::from_millis(10);
    let mut long = Experiment::new(ScenarioKind::Single);
    long.warmup = Duration::from_millis(10);
    long.measure = Duration::from_millis(20);
    let rs = short.run();
    let rl = long.run();
    let ratio = rl.delivered_bytes as f64 / rs.delivered_bytes as f64;
    assert!((1.8..2.2).contains(&ratio), "bytes ratio = {ratio:.2}");
    let thpt_rel = (rl.total_gbps - rs.total_gbps).abs() / rs.total_gbps;
    assert!(thpt_rel < 0.1, "throughput shifted {thpt_rel:.2}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Resilience: under bursty loss up to 5% — any seed, any burst
    /// length — every flow in every scenario eventually completes data and
    /// the run quiesces without tripping the watchdog. The window must
    /// outlast the worst *legitimate* silence: a flow that loses its whole
    /// initial flight waits out the 100ms initial RTO before its first
    /// successful byte.
    #[test]
    fn flows_survive_bursty_loss(
        seed in any::<u64>(),
        rate_pm in 1u32..51,
        burst in 1u32..17,
    ) {
        for kind in all_scenarios() {
            let mut exp = Experiment::new(kind).configure(|c| {
                c.seed = seed;
                c.link.loss = LossModel::bursty(rate_pm as f64 / 1000.0, burst as f64);
            });
            exp.warmup = Duration::from_millis(5);
            exp.measure = Duration::from_millis(120);
            let r = exp
                .try_run()
                .unwrap_or_else(|e| panic!("{kind:?} seed={seed}: {e}"));
            prop_assert!(r.delivered_bytes > 0, "{kind:?} seed={seed} moved no data");
            for &(flow, bytes) in r.per_flow_bytes.iter() {
                prop_assert!(
                    bytes > 0,
                    "{kind:?} seed={seed} rate={rate_pm}e-3 burst={burst}: flow {flow} wedged"
                );
            }
        }
    }
}

/// A fault plan is part of the deterministic state: the same seed and the
/// same plan reproduce a byte-identical report.
#[test]
fn fault_plans_are_deterministic() {
    let build = || {
        let mut exp = Experiment::new(ScenarioKind::Incast { flows: 4 }).configure(|c| {
            c.seed = 42;
            c.link.loss = LossModel::bursty(0.02, 8.0);
            c.link.flap = Some(PhaseSchedule::once(
                Duration::from_millis(14),
                Duration::from_micros(500),
            ));
            c.faults.ring_exhaust = Some(RingExhaust {
                window: PhaseSchedule::once(Duration::from_millis(16), Duration::from_millis(2)),
                host: 1,
            });
            c.faults.pool_pressure = Some(PoolPressure {
                window: PhaseSchedule::once(Duration::from_millis(20), Duration::from_millis(2)),
                host: 1,
            });
            c.faults.core_stall = Some(CoreStall {
                window: PhaseSchedule::once(Duration::from_millis(24), Duration::from_millis(1)),
                host: 1,
                core: 0,
            });
            c.max_backlog = 2048;
        });
        exp.warmup = Duration::from_millis(10);
        exp.measure = Duration::from_millis(20);
        exp
    };
    let a = build().try_run().expect("faulted run quiesces");
    let b = build().try_run().expect("faulted run quiesces");
    assert_eq!(a.to_json(), b.to_json(), "fault plan broke determinism");
    assert!(a.drops.total() > 0, "the plan must actually inject losses");
}

/// The watchdog never fires on healthy runs, even with a horizon far
/// tighter than the default 5s.
#[test]
fn watchdog_never_fires_on_healthy_runs() {
    for kind in all_scenarios() {
        let r = Experiment::new(kind)
            .configure(|c| {
                c.seed = 5;
                c.watchdog_horizon = Duration::from_millis(2);
            })
            .quick()
            .try_run();
        match r {
            Ok(_) => {}
            Err(e) => panic!("{kind:?}: watchdog fired on a healthy run: {e}"),
        }
    }
}

/// Drop taxonomy accounts for 100% of lost frames: the wire bucket matches
/// the link's drop counters and the ring/pool buckets match the NIC's.
#[test]
fn drop_taxonomy_accounts_for_every_lost_frame() {
    let mut exp = Experiment::new(ScenarioKind::Single).configure(|c| {
        c.seed = 9;
        // Periodic, interleaved fault windows over a long run: whatever
        // the flow's recovery state, each fault catches traffic at full
        // rate at least once, so every bucket gets populated.
        c.faults.ring_exhaust = Some(RingExhaust {
            window: PhaseSchedule::every(
                Duration::from_millis(25),
                Duration::from_millis(1),
                Duration::from_millis(20),
            ),
            host: 1,
        });
        c.faults.pool_pressure = Some(PoolPressure {
            window: PhaseSchedule::every(
                Duration::from_millis(33),
                Duration::from_millis(3),
                Duration::from_millis(20),
            ),
            host: 1,
        });
        c.link.flap = Some(PhaseSchedule::every(
            Duration::from_millis(41),
            Duration::from_millis(1),
            Duration::from_millis(20),
        ));
    });
    exp.warmup = Duration::from_millis(20);
    exp.measure = Duration::from_millis(100);
    let r = exp.try_run().expect("faulted run quiesces");
    assert!(r.drops.total() > 0, "faults must inject losses");
    assert_eq!(r.drops.wire, r.wire_drops, "wire bucket != link drops");
    assert_eq!(
        r.drops.rx_ring + r.drops.pool,
        r.ring_drops,
        "NIC buckets != ring drops"
    );
    assert!(r.drops.rx_ring > 0, "ring exhaustion must be attributed");
    assert!(r.drops.pool > 0, "pool pressure must be attributed");
}

/// Reports serialize to JSON and back without loss (EXPERIMENTS tooling).
#[test]
fn reports_round_trip_json() {
    let r = run(ScenarioKind::Single, 5);
    let json = r.to_json();
    let back = Report::from_json(&json).expect("parse");
    assert_eq!(back.delivered_bytes, r.delivered_bytes);
    assert_eq!(back.receiver.breakdown, r.receiver.breakdown);
}

/// The throughput timeline integrates back to the delivered bytes and the
/// measurement window is steady for a converged single flow.
#[test]
fn timeline_integrates_and_is_steady() {
    let r = Experiment::new(ScenarioKind::Single).run();
    assert!(!r.gbps_timeline.is_empty());
    // Integrate: each sample covers ~1ms.
    let integrated_bytes: f64 = r
        .gbps_timeline
        .iter()
        .map(|&(_, g)| g * 1e9 / 8.0 * 0.001)
        .sum();
    let rel = (integrated_bytes - r.delivered_bytes as f64).abs() / r.delivered_bytes as f64;
    assert!(rel < 0.05, "timeline does not integrate: rel {rel:.3}");
    // Post-warmup, a lossless single flow is steady.
    assert!(
        r.throughput_cv() < 0.25,
        "unsteady measurement window: cv = {:.3}",
        r.throughput_cv()
    );
}
