//! Cross-backend differential suite.
//!
//! The `Datapath` trait's contract is that backends change *where host
//! cycles are charged*, never *what moves*: the protocol state machines,
//! frame arenas, page pools and descriptor rings run identically under
//! all three architectures. That makes matched-config runs directly
//! comparable — every backend must satisfy the same conservation and
//! accounting identities, and the deltas that do appear (goodput per
//! core, taxonomy shape) must go in the documented direction:
//!
//! * in-kernel pays the full paper taxonomy,
//! * TOE collapses it to copy + syscall + descriptor bookkeeping,
//! * bypass keeps only descriptor/polling work on a dedicated core,
//!
//! so goodput-per-host-core orders bypass ≥ TOE ≥ in-kernel.

use hostnet::building_blocks::core_figures as figures;
use hostnet::building_blocks::metrics::Category;
use hostnet::building_blocks::stack::DatapathKind;
use hostnet::{Experiment, Report, ScenarioKind};

/// Matched-config audited runs: same scenario, seed and windows, one run
/// per backend, every conservation ledger checked at quiesce/teardown.
fn matched_runs(scenario: ScenarioKind) -> Vec<(DatapathKind, Report)> {
    DatapathKind::ALL
        .into_iter()
        .map(|kind| {
            let r = Experiment::new(scenario)
                .configure(|c| c.datapath = kind)
                .quick()
                .audited()
                .try_run()
                .unwrap_or_else(|e| panic!("{} under {}: {e}", scenario.label(), kind.label()));
            (kind, r)
        })
        .collect()
}

/// Identities every backend must satisfy on its own report: delivered
/// bytes are what the throughput figure is computed from, and the drop
/// taxonomy attributes every lost frame exactly once.
fn check_accounting(kind: DatapathKind, r: &Report) {
    let ctx = kind.label();
    assert!(r.delivered_bytes > 0, "{ctx}: no application bytes moved");
    let gbps = r.delivered_bytes as f64 * 8.0 / r.window_secs / 1e9;
    assert!(
        (gbps - r.total_gbps).abs() < 1e-6 * r.total_gbps.max(1.0),
        "{ctx}: total_gbps {} inconsistent with delivered_bytes ({gbps})",
        r.total_gbps
    );
    assert_eq!(r.drops.wire, r.wire_drops, "{ctx}: wire drop split");
    assert_eq!(
        r.drops.rx_ring + r.drops.pool,
        r.ring_drops,
        "{ctx}: ring drop split"
    );
}

#[test]
fn backends_conserve_bytes_and_accounting_under_audit() {
    for scenario in [ScenarioKind::Single, ScenarioKind::OneToOne { flows: 4 }] {
        for (kind, r) in matched_runs(scenario) {
            check_accounting(kind, &r);
        }
    }
}

#[test]
fn goodput_per_core_orders_bypass_toe_inkernel() {
    for scenario in [ScenarioKind::Single, ScenarioKind::OneToOne { flows: 4 }] {
        let runs = matched_runs(scenario);
        let per_core = |k: DatapathKind| {
            runs.iter()
                .find(|(kind, _)| *kind == k)
                .map(|(_, r)| r.thpt_per_core_gbps)
                .unwrap()
        };
        let ik = per_core(DatapathKind::InKernel);
        let toe = per_core(DatapathKind::ToeOffload);
        let byp = per_core(DatapathKind::UserBypass);
        assert!(
            byp >= toe && toe >= ik,
            "{}: goodput/core out of order: bypass {byp:.2} / toe {toe:.2} / inkernel {ik:.2}",
            scenario.label()
        );
    }
}

#[test]
fn taxonomies_collapse_per_backend_contract() {
    for (kind, r) in matched_runs(ScenarioKind::Single) {
        let total = |cat: Category| r.sender.breakdown[cat] + r.receiver.breakdown[cat];
        match kind {
            DatapathKind::InKernel => {
                for cat in [
                    Category::DataCopy,
                    Category::TcpIp,
                    Category::SkbMgmt,
                    Category::Memory,
                ] {
                    assert!(total(cat) > 0, "inkernel: {} cycles missing", cat.label());
                }
            }
            DatapathKind::ToeOffload => {
                // Protocol, skb and memory management moved on-NIC; the
                // host keeps copies, syscalls (Etc) and descriptor work.
                assert!(total(Category::DataCopy) > 0, "toe: copies are host work");
                assert!(total(Category::Etc) > 0, "toe: syscalls are host work");
                assert!(total(Category::NetDevice) > 0, "toe: descriptor work");
                assert_eq!(total(Category::TcpIp), 0, "toe: protocol on-NIC");
                assert_eq!(total(Category::SkbMgmt), 0, "toe: no host skbs");
                assert_eq!(total(Category::Memory), 0, "toe: preregistered pools");
            }
            DatapathKind::UserBypass => {
                // Zero-copy busy-poll: only descriptor/polling work (plus
                // scheduling) survives on the host.
                assert!(total(Category::NetDevice) > 0, "bypass: polling work");
                for cat in [
                    Category::DataCopy,
                    Category::TcpIp,
                    Category::SkbMgmt,
                    Category::Memory,
                    Category::Etc,
                ] {
                    assert_eq!(total(cat), 0, "bypass: {} must be zero", cat.label());
                }
            }
        }
    }
}

#[test]
fn fig_backend_sweep_is_jobs_invariant() {
    // The backend sweep is a set of independent deterministic runs, so
    // the worker count must never leak into the rendered reports.
    let sweep = |jobs: usize| -> Vec<String> {
        figures::run_sweep_with(jobs, &figures::fig_backend_points())
            .iter()
            .map(|r| r.to_json())
            .collect()
    };
    let seq = sweep(1);
    let par = sweep(4);
    assert_eq!(seq.len(), 6);
    assert_eq!(seq, par, "fig_backend differs between --jobs 1 and 4");
}
