//! Integration tests for the skb lifecycle tracer (`hns-trace`).
//!
//! The contract under test: tracing is an *observer*. Stamps charge no
//! simulated cycles, so enabling the tracer must not move a single
//! number in the report — and the exports must be deterministic enough
//! to diff across runs.

use hostnet::building_blocks::trace::{export, TraceConfig};
use hostnet::{Experiment, ScenarioKind};

fn untraced() -> Experiment {
    Experiment::new(ScenarioKind::Single).quick()
}

fn traced(sample_every: u32) -> Experiment {
    untraced().configure(|c| {
        c.trace = TraceConfig {
            sample_every,
            ..TraceConfig::enabled()
        }
    })
}

/// Satellite: record the tracing overhead honestly. The tracer stamps
/// every skb (sample-every-1) and the throughput delta against the
/// untraced run must stay under the stated bound — which is zero, not
/// "small": stamps never charge cycles, so the simulated timeline is
/// bit-identical by construction. Wall-clock overhead (ring pushes,
/// hashing) exists but is not simulated time.
#[test]
fn full_tracing_has_zero_simulated_overhead() {
    const BOUND_PCT: f64 = 0.1; // stated bound; measured delta must be 0
    let off = untraced().run();
    let on = traced(1).run();

    let delta_pct = (on.total_gbps - off.total_gbps).abs() / off.total_gbps * 100.0;
    println!(
        "tracing overhead: {:.4}% throughput delta at sample-every-1 \
         ({:.2} → {:.2} Gbps, bound {BOUND_PCT}%)",
        delta_pct, off.total_gbps, on.total_gbps
    );
    assert!(
        delta_pct < BOUND_PCT,
        "tracing perturbed throughput by {delta_pct}%"
    );
    assert_eq!(
        off.total_gbps, on.total_gbps,
        "stamps must not charge simulated cycles"
    );
}

/// With tracing off the report must be byte-identical to one from a
/// traced run once the trace-only fields are cleared — i.e. tracing
/// adds keys, it never perturbs existing ones.
#[test]
fn traced_report_differs_only_in_trace_fields() {
    let off = untraced().run();
    let mut on = traced(1).run();

    assert!(!on.stage_latency.is_empty());
    on.stage_latency.clear();
    on.trace_overflow = 0;
    assert_eq!(
        off.to_json(),
        on.to_json(),
        "tracing must not drift any non-trace report field"
    );
}

/// JSONL export: deterministic under a fixed seed (replay/diff-able)
/// and honours sampling.
#[test]
fn jsonl_export_is_deterministic_and_sampled() {
    let (_, t1) = traced(4).try_run_traced().unwrap();
    let (_, t2) = traced(4).try_run_traced().unwrap();
    let a = export::to_jsonl(&t1);
    let b = export::to_jsonl(&t2);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must give a byte-identical JSONL trace");

    let (_, full) = traced(1).try_run_traced().unwrap();
    assert!(
        full.events() > t1.events() * 3,
        "sample-every-4 should record ~1/4 of the events ({} vs {})",
        t1.events(),
        full.events()
    );
}

/// Chrome export: parses as JSON, has per-core thread metadata for both
/// hosts, and carries stage spans (the acceptance criterion behind
/// "loads in Perfetto with one track per core").
#[test]
fn chrome_export_has_per_core_tracks_and_spans() {
    use hostnet::building_blocks::metrics::json::Value;

    let (_, trace) = traced(8).try_run_traced().unwrap();
    let doc = Value::parse(&export::to_chrome(&trace)).expect("chrome export must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");

    let mut process_names = Vec::new();
    let mut tracks = std::collections::BTreeSet::new();
    let mut spans = 0u64;
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).unwrap();
        match ph {
            "M" if ev.get("name").and_then(|v| v.as_str()) == Ok("process_name") => {
                process_names.push(
                    ev.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(|v| v.as_str())
                        .unwrap()
                        .to_string(),
                );
            }
            "X" => {
                spans += 1;
                let pid = ev.get("pid").and_then(|v| v.as_u64()).unwrap();
                let tid = ev.get("tid").and_then(|v| v.as_u64()).unwrap();
                tracks.insert((pid, tid));
                assert!(ev.get("dur").is_ok(), "complete spans carry a duration");
            }
            _ => {}
        }
    }
    assert_eq!(process_names, vec!["host0", "host1"]);
    assert!(spans > 0, "single flow must produce stage spans");
    assert!(
        tracks.iter().any(|&(pid, _)| pid == 0) && tracks.iter().any(|&(pid, _)| pid == 1),
        "spans must land on both the sender and receiver tracks: {tracks:?}"
    );
}

/// Per-stage residency percentiles surface in the report JSON and the
/// CSV exporter, including the synthetic end-to-end row.
#[test]
fn stage_percentiles_reach_json_and_csv() {
    use hostnet::building_blocks::metrics::json::Value;

    let report = traced(1).run();
    let doc = Value::parse(&report.to_json()).unwrap();
    let stages = doc
        .get("stage_latency")
        .and_then(|v| v.as_arr())
        .expect("traced report exports stage_latency");
    let names: Vec<_> = stages
        .iter()
        .map(|s| s.get("stage").and_then(|v| v.as_str()).unwrap().to_string())
        .collect();
    for want in ["copy_in", "wire", "sock_queue", "end_to_end"] {
        assert!(names.iter().any(|n| n == want), "missing stage {want}");
    }
    for s in stages {
        for key in ["samples", "p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_ns"] {
            assert!(s.get(key).is_ok(), "stage row missing {key}");
        }
    }

    let csv = hostnet::building_blocks::metrics::reports_to_csv(std::slice::from_ref(&report));
    let header = csv.lines().next().unwrap();
    assert!(header.contains("sock_queue_p50_ns"));
    assert!(header.contains("end_to_end_p99_ns"));
    assert!(header.contains("trace_overflow"));
}
