//! Streaming-telemetry (`hns-monitor`) integration contracts.
//!
//! Three promises pin the subsystem:
//!
//! 1. **Off means invisible.** With `SimConfig::monitor = None` (the
//!    default) every report is byte-identical to one from a build that
//!    never heard of the monitor — and turning it *on* must not perturb
//!    the simulation either, only add the `monitor` key.
//! 2. **Deterministic snapshots.** Two identically-seeded monitored runs
//!    emit identical snapshot JSONL, end to end through the CLI.
//! 3. **Honest sketches.** Per-stage quantiles from the DDSketches match
//!    exact quantiles computed offline from the trace timelines on the
//!    same seeded run, within the sketch's relative-error bound.

use hostnet::building_blocks::conn::AdmissionPolicy;
use hostnet::building_blocks::core_figures as figures;
use hostnet::building_blocks::monitor::MonitorConfig;
use hostnet::building_blocks::sim::Duration;
use hostnet::building_blocks::stack::{SimConfig, World};
use hostnet::building_blocks::trace::{StageId, TraceConfig};
use hostnet::building_blocks::workload;
use hostnet::{Experiment, ScenarioKind};

/// A short traced capacity run; `monitored` only toggles the monitor.
fn capacity_experiment(monitored: bool) -> Experiment {
    let mut churn = workload::churn_capacity(60, AdmissionPolicy::Queue);
    churn.trace_sample = 4;
    Experiment::new(ScenarioKind::Churn { churn })
        .quick()
        .configure(move |c| {
            c.trace = TraceConfig {
                enabled: true,
                sample_every: 4,
                ..TraceConfig::DISABLED
            };
            if monitored {
                c.monitor = Some(MonitorConfig {
                    interval: Duration::from_millis(2),
                    ..MonitorConfig::default()
                });
            }
        })
}

#[test]
fn default_config_and_golden_sweeps_are_unmonitored() {
    assert!(
        SimConfig::default().monitor.is_none(),
        "monitoring must be opt-in"
    );
    // The golden-figure sweeps (whose outputs are byte-compared against
    // checked-in files) must all run unmonitored.
    for points in [
        figures::fig03e_points(),
        figures::fig03g_points(),
        figures::fig13_points(),
        figures::fig05_conn_rate_points(),
        figures::fig_capacity_points(),
    ] {
        for p in points {
            assert!(
                p.build().cfg.monitor.is_none(),
                "golden sweep point `{}` must run unmonitored",
                p.label
            );
        }
    }
}

#[test]
fn monitor_only_adds_the_monitor_key() {
    let plain = capacity_experiment(false).run();
    let mut monitored = capacity_experiment(true).run();

    let summary = monitored.monitor.clone().expect("monitored report");
    assert!(
        summary.snapshots >= 2,
        "expected snapshots in an 8ms window"
    );
    assert!(monitored.to_json().contains("\"monitor\""));
    assert!(!plain.to_json().contains("\"monitor\""));

    // Strip the summary: everything else must be byte-identical, i.e. the
    // monitor observed the run without perturbing it.
    monitored.monitor = None;
    assert_eq!(
        plain.to_json(),
        monitored.to_json(),
        "monitoring must not change simulation outcomes"
    );
}

#[test]
fn monitored_snapshot_stream_is_deterministic() {
    use std::cell::RefCell;
    use std::rc::Rc;

    let stream = || {
        let mut churn = workload::churn_capacity(60, AdmissionPolicy::Drop);
        churn.trace_sample = 4;
        let cfg = SimConfig {
            seed: 42,
            churn: Some(churn),
            monitor: Some(MonitorConfig {
                interval: Duration::from_millis(2),
                ..MonitorConfig::default()
            }),
            trace: TraceConfig {
                enabled: true,
                sample_every: 4,
                ..TraceConfig::DISABLED
            },
            ..SimConfig::default()
        };
        let lines = Rc::new(RefCell::new(Vec::<String>::new()));
        let sink = Rc::clone(&lines);
        let mut world = World::new(cfg);
        world.set_monitor_emit(Box::new(move |s| {
            sink.borrow_mut().push(s.to_jsonl());
        }));
        world
            .try_run(Duration::from_millis(5), Duration::from_millis(10))
            .expect("monitored run quiesces");
        drop(world); // releases the emit closure's clone of `lines`
        Rc::try_unwrap(lines).unwrap().into_inner()
    };

    let a = stream();
    let b = stream();
    assert!(
        a.len() >= 2,
        "expected at least two snapshots, got {}",
        a.len()
    );
    assert_eq!(a, b, "identically-seeded runs must emit identical JSONL");
}

#[test]
fn sketch_quantiles_match_offline_trace_quantiles() {
    use std::collections::HashMap;

    // Zero warmup aligns the monitor's window with the trace rings: both
    // see the same stamps from t = 0.
    let mut churn = workload::churn_short_rpc(150_000.0, 4096);
    churn.trace_sample = 2;
    let mut exp = Experiment::new(ScenarioKind::Churn { churn }).configure(|c| {
        c.trace = TraceConfig {
            enabled: true,
            sample_every: 2,
            ..TraceConfig::DISABLED
        };
        c.monitor = Some(MonitorConfig {
            interval: Duration::from_millis(2),
            ..MonitorConfig::default()
        });
    });
    exp.warmup = Duration::ZERO;
    exp.measure = Duration::from_millis(10);
    let (report, trace) = exp.try_run_traced().expect("run quiesces");
    assert_eq!(
        report.trace_overflow, 0,
        "rings must not overflow for an exact comparison"
    );
    let summary = report.monitor.as_ref().expect("monitored report");
    let alpha = summary.sketch_alpha;

    // Offline ground truth: exact residencies from the trace timelines,
    // restricted to the pairs the sketches folded — the second stamp must
    // land by the final pre-EndRun autotune tick (EndRun wins the 10ms
    // tie by FIFO order, so the last fold is at 9ms). The sink treats
    // RecvCopy as terminal, so pairs starting there are skipped.
    let fold_horizon_ns = 9_000_000u64;
    let mut exact: HashMap<&'static str, Vec<u64>> = HashMap::new();
    for (_skb, tl) in trace.timelines() {
        for pair in tl.windows(2) {
            let (_, _, a) = pair[0];
            let (_, _, b) = pair[1];
            if a.stage == StageId::RecvCopy || b.t.as_nanos() > fold_horizon_ns {
                continue;
            }
            exact
                .entry(a.stage.label())
                .or_default()
                .push(b.t.since(a.t).as_nanos());
        }
    }

    assert!(
        summary.stages.iter().any(|s| s.samples >= 100),
        "need a well-populated stage for the tail quantiles to mean anything"
    );
    for s in &summary.stages {
        let vals = exact
            .get_mut(s.stage.as_str())
            .unwrap_or_else(|| panic!("stage {} missing from offline trace", s.stage));
        vals.sort_unstable();
        assert_eq!(
            s.samples,
            vals.len() as u64,
            "sketch and offline sample sets must agree for {}",
            s.stage
        );
        let rank = |q: f64| vals[(q * (vals.len() - 1) as f64).floor() as usize];
        for (q, got) in [(0.5, s.p50_ns), (0.99, s.p99_ns), (0.999, s.p999_ns)] {
            let want = rank(q) as f64;
            let err = (got as f64 - want).abs();
            assert!(
                err <= alpha * want + 1.0,
                "{} q{q}: sketch {got} vs exact {want} exceeds the \
                 relative-error bound (alpha = {alpha})",
                s.stage
            );
        }
    }
}

#[test]
fn cli_monitor_streams_deterministic_jsonl() {
    let bin = env!("CARGO_BIN_EXE_hostnet");
    let dir = std::env::temp_dir();
    let run = |tag: &str| {
        let path = dir.join(format!(
            "hostnet-monitor-{tag}-{}.jsonl",
            std::process::id()
        ));
        let out = std::process::Command::new(bin)
            .args([
                "monitor",
                "--quick",
                "--seed",
                "11",
                "--metrics-out",
                path.to_str().unwrap(),
            ])
            .output()
            .expect("spawn hostnet monitor");
        assert!(out.status.success(), "hostnet monitor failed: {out:?}");
        let jsonl = std::fs::read_to_string(&path).expect("metrics file");
        let _ = std::fs::remove_file(&path);
        (out.stdout, jsonl)
    };
    let (stdout_a, jsonl_a) = run("a");
    let (stdout_b, jsonl_b) = run("b");
    assert!(
        jsonl_a.lines().count() >= 2,
        "expected at least two snapshot lines, got:\n{jsonl_a}"
    );
    assert!(jsonl_a.lines().all(|l| l.starts_with("{\"t\":")));
    assert_eq!(jsonl_a, jsonl_b, "snapshot stream must be deterministic");
    assert_eq!(stdout_a, stdout_b, "live output must be deterministic");
}
