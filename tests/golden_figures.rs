//! Golden-figure regression suite.
//!
//! The simulator is deterministic end to end, so every figure's reports
//! can be pinned byte-for-byte. These tests render representative sweeps
//! (fig. 3e's ring × buffer grid, the fig. 9b resilience extension,
//! fig. 13's congestion-control matrix, the fig_capacity overload sweep,
//! the fig_backend datapath comparison) to canonical JSONL and compare
//! against the checked-in files under `tests/golden/`.
//!
//! Any intentional change to the engine, cost model, or report schema
//! shows up here first. To accept new goldens (the `--bless` path):
//!
//! ```text
//! HNS_BLESS=1 cargo test --test golden_figures
//! ```
//!
//! then review the golden diff like any other code change.

use hostnet::building_blocks::core_figures as figures;
use hostnet::Report;
use std::path::PathBuf;

/// Canonical rendering: one report JSON object per line, sweep order.
fn render(reports: &[Report]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `body` against the golden file, or rewrite it under
/// `HNS_BLESS=1`. On mismatch, report the first differing line so the
/// failure is readable without an external diff.
fn check(name: &str, body: String) {
    let path = golden_path(name);
    if std::env::var_os("HNS_BLESS").is_some() {
        std::fs::write(&path, body).expect("bless: cannot write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e}\n(generate it with `HNS_BLESS=1 cargo test --test golden_figures`)",
            path.display()
        )
    });
    if want == body {
        return;
    }
    let mismatch = want
        .lines()
        .zip(body.lines())
        .enumerate()
        .find(|(_, (w, g))| w != g);
    match mismatch {
        Some((i, (w, g))) => panic!(
            "golden mismatch for {name} at line {}:\n  golden: {w}\n  got:    {g}\n\
             (if intended, re-bless with `HNS_BLESS=1 cargo test --test golden_figures`)",
            i + 1
        ),
        None => panic!(
            "golden mismatch for {name}: line count {} vs {} (re-bless if intended)",
            want.lines().count(),
            body.lines().count()
        ),
    }
}

#[test]
fn golden_fig03e_ring_buffer_grid() {
    let reports: Vec<Report> = figures::fig03e_ring_buffer()
        .into_iter()
        .map(|(_, _, r)| r)
        .collect();
    assert_eq!(reports.len(), 24);
    check("fig03e.jsonl", render(&reports));
}

#[test]
fn golden_fig09b_resilience() {
    let reports: Vec<Report> = figures::fig09b_resilience()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    check("fig09b.jsonl", render(&reports));
}

#[test]
fn golden_fig13_congestion_control() {
    let reports: Vec<Report> = figures::fig13_congestion_control()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    check("fig13.jsonl", render(&reports));
}

#[test]
fn inkernel_backend_is_the_legacy_pipeline() {
    // Explicit form of what every other golden test asserts implicitly:
    // the default datapath is the in-kernel backend, and selecting it
    // explicitly changes nothing — the `Datapath` seam is
    // charge-transparent, so every pre-seam golden stays byte-identical.
    use hostnet::building_blocks::stack::DatapathKind;
    use hostnet::{Experiment, ScenarioKind};
    assert_eq!(
        hostnet::building_blocks::stack::SimConfig::default().datapath,
        DatapathKind::InKernel
    );
    let implicit = Experiment::new(ScenarioKind::Single).quick().run();
    let explicit = Experiment::new(ScenarioKind::Single)
        .configure(|c| c.datapath = DatapathKind::InKernel)
        .quick()
        .run();
    assert_eq!(implicit.to_json(), explicit.to_json());
}

#[test]
fn golden_fig_backend() {
    // The datapath comparison: in-kernel vs TOE vs kernel-bypass over the
    // same scenarios. The in-kernel rows double as a pin that the
    // `Datapath` seam is charge-transparent: they must match what the
    // legacy pipeline produced before the trait existed (the other golden
    // suites enforce that too — all pre-seam goldens stay byte-identical).
    let reports: Vec<Report> = figures::fig_backend().into_iter().map(|(_, r)| r).collect();
    assert_eq!(reports.len(), 6);
    check("fig_backend.jsonl", render(&reports));
}

#[test]
fn golden_fig_capacity() {
    // The overload sweep: admission policy × concurrent clients. Pins
    // the whole capacity summary (queue books, cookies, sheds, memory
    // peaks, RPC tail) byte-for-byte, on top of the usual report fields.
    let reports: Vec<Report> = figures::fig_capacity()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    assert_eq!(reports.len(), 12);
    check("fig_capacity.jsonl", render(&reports));
}

#[test]
fn golden_fig_incast() {
    // The fabric fan-in sweep: ECN off/on × sender count through the
    // shared-buffer ToR model. Pins the switch drop counts, per-flow
    // fairness, and the ECN recovery byte-for-byte.
    let reports: Vec<Report> = figures::fig_incast().into_iter().map(|(_, r)| r).collect();
    assert_eq!(reports.len(), 10);
    check("fig_incast.jsonl", render(&reports));
}
