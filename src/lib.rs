//! # hostnet — facade crate
//!
//! Re-exports the public API of the `hostnet` workspace: a simulation-based
//! reproduction of *Understanding Host Network Stack Overheads* (SIGCOMM
//! 2021). See the repository README for a tour and `hns-core` for the
//! experiment API.

pub use hns_core::*;

/// The building-block crates, re-exported for advanced users who want to
/// compose their own hosts, NICs, or workloads.
pub mod building_blocks {
    pub use hns_audit as audit;
    pub use hns_conn as conn;
    pub use hns_core::figures as core_figures;
    pub use hns_faults as faults;
    pub use hns_mem as mem;
    pub use hns_metrics as metrics;
    pub use hns_monitor as monitor;
    pub use hns_nic as nic;
    pub use hns_par as par;
    pub use hns_proto as proto;
    pub use hns_sched as sched;
    pub use hns_sim as sim;
    pub use hns_stack as stack;
    pub use hns_trace as trace;
    pub use hns_workload as workload;
}
