//! `hostnet` — command-line front end for the simulator.
//!
//! ```text
//! hostnet run single --level arfs --loss 0.0015 --json
//! hostnet run incast --flows 8
//! hostnet run rpc --clients 16 --size 4096 --remote-server
//! hostnet run mixed --shorts 16
//! hostnet run churn --admission shed --accept-queue 64 --slow-prob 0.25
//! hostnet figures fig06 fig12 --csv
//! hostnet capacity --quick --audited
//! hostnet monitor --clients 250 --policy queue --metrics-out metrics.jsonl
//! hostnet audit --runs 200 --seed 1
//! hostnet list
//! ```
//!
//! Argument parsing is hand-rolled (the workspace keeps its dependency
//! surface to the approved set); see [`cli`] for the grammar.

use hostnet::building_blocks::proto::cc::CcAlgo;
use hostnet::building_blocks::sim::Duration;
use hostnet::building_blocks::stack::config::RcvBufPolicy;
use hostnet::building_blocks::stack::DatapathKind;
use hostnet::{Experiment, OptLevel, Placement, ScenarioKind};

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse(&args) {
        Ok(cmd) => execute(cmd),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", cli::USAGE);
            ExitCode::from(2)
        }
    }
}

fn execute(cmd: cli::Command) -> ExitCode {
    match cmd {
        cli::Command::Help => {
            println!("{}", cli::USAGE);
            ExitCode::SUCCESS
        }
        cli::Command::List => {
            println!("scenarios:");
            println!("  single       one long flow (paper §3.1)");
            println!("  numa-remote  one long flow on a NIC-remote node (Fig. 4)");
            println!("  one-to-one   n flows, one per core pair (§3.2)     [--flows]");
            println!("  incast       n sender cores → 1 receiver core (§3.3) [--flows]");
            println!("  outcast      1 sender core → n receiver cores (§3.4) [--flows]");
            println!("  all-to-all   x·x flows (§3.5)                       [--flows = x]");
            println!(
                "  rpc          ping-pong RPC incast (§3.7)  [--clients --size --remote-server]"
            );
            println!("  mixed        1 long + n short flows on one core (§3.7) [--shorts --size]");
            println!(
                "  churn        connection-lifecycle churn (hns-conn)  [--churn-rate --churn-mode --churn-conns --size]"
            );
            ExitCode::SUCCESS
        }
        cli::Command::Figures { names, csv, jobs } => {
            // Sweep points are independent deterministic runs collected in
            // declared order, so any job count yields identical output.
            hostnet::building_blocks::core_figures::set_jobs(
                jobs.unwrap_or_else(hostnet::building_blocks::par::available_jobs),
            );
            let reports = run_figures(&names);
            if reports.is_empty() {
                eprintln!("no matching figures (try `hostnet help`)");
                return ExitCode::from(2);
            }
            if csv {
                print!(
                    "{}",
                    hostnet::building_blocks::metrics::reports_to_csv(&reports)
                );
            } else {
                print!(
                    "{}",
                    hostnet::building_blocks::metrics::format_series_table(&reports)
                );
            }
            ExitCode::SUCCESS
        }
        cli::Command::Capacity(cap) => {
            let points = hostnet::building_blocks::core_figures::fig_capacity_points();
            let reports = match run_points(&points, cap.jobs, cap.quick, cap.audited) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("capacity: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if cap.csv {
                print!(
                    "{}",
                    hostnet::building_blocks::metrics::reports_to_csv(&reports)
                );
            } else {
                print!(
                    "{}",
                    hostnet::building_blocks::metrics::format_series_table(&reports)
                );
                for r in &reports {
                    println!("\n{}:", r.label);
                    print!(
                        "{}",
                        hostnet::building_blocks::metrics::format_capacity_table(r)
                    );
                }
            }
            ExitCode::SUCCESS
        }
        cli::Command::Incast(inc) => {
            let points = hostnet::building_blocks::core_figures::fig_incast_points();
            let reports = match run_points(&points, inc.jobs, inc.quick, inc.audited) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("incast: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if inc.csv {
                print!(
                    "{}",
                    hostnet::building_blocks::metrics::reports_to_csv(&reports)
                );
            } else {
                print!(
                    "{}",
                    hostnet::building_blocks::metrics::format_series_table(&reports)
                );
            }
            ExitCode::SUCCESS
        }
        cli::Command::Backend(b) => {
            use hostnet::building_blocks::metrics;
            let points = hostnet::building_blocks::core_figures::fig_backend_points();
            let reports = match run_points(&points, b.jobs, b.quick, b.audited) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("backend: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if b.csv {
                print!("{}", metrics::reports_to_csv(&reports));
            } else {
                print!("{}", metrics::format_series_table(&reports));
                let side = |pick: fn(&hostnet::Report) -> &metrics::CycleBreakdown| {
                    reports
                        .iter()
                        .map(|r| (r.label.clone(), *pick(r)))
                        .collect::<Vec<_>>()
                };
                println!("\nsender cycle taxonomy (fraction of host cycles):");
                print!(
                    "{}",
                    metrics::format_breakdown_table(&side(|r| &r.sender.breakdown))
                );
                println!("\nreceiver cycle taxonomy (fraction of host cycles):");
                print!(
                    "{}",
                    metrics::format_breakdown_table(&side(|r| &r.receiver.breakdown))
                );
            }
            ExitCode::SUCCESS
        }
        cli::Command::Monitor(m) => run_monitor(*m),
        cli::Command::Audit(opts) => {
            let outcome = hostnet::run_audit(&opts);
            if outcome.ok() {
                println!(
                    "audit: {} runs, 0 violations (seed {})",
                    outcome.runs, opts.seed
                );
                ExitCode::SUCCESS
            } else {
                for f in &outcome.failures {
                    eprintln!(
                        "audit FAIL run {} [{}] {}: {}",
                        f.run,
                        f.scenario,
                        f.property.name(),
                        f.detail
                    );
                    eprintln!(
                        "  minimal deltas: {}",
                        f.minimal
                            .iter()
                            .map(|d| d.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    if let Some(p) = &f.repro {
                        eprintln!("  repro written to {}", p.display());
                    }
                }
                eprintln!(
                    "audit: {} runs, {} violation(s) (seed {})",
                    outcome.runs,
                    outcome.failures.len(),
                    opts.seed
                );
                ExitCode::FAILURE
            }
        }
        cli::Command::Run(run) => {
            let mut exp = Experiment::new(run.scenario);
            if let Some(level) = run.level {
                exp = exp.at_level(level);
            }
            exp = exp.configure(|c| {
                c.seed = run.seed;
                c.link.loss = hns_faults::LossModel::uniform(run.loss);
                if let Some(mtu) = run.mtu {
                    c.stack.mtu = mtu;
                }
                if let Some(cc) = run.cc {
                    c.stack.cc = cc;
                }
                if let Some(ring) = run.ring {
                    c.stack.rx_descriptors = ring;
                }
                if let Some(kb) = run.rcvbuf_kb {
                    c.stack.rcvbuf = RcvBufPolicy::Fixed(kb * 1024);
                }
                c.stack.dca = !run.no_dca;
                c.stack.iommu = run.iommu;
                c.stack.zerocopy_tx = run.zerocopy_tx;
                c.stack.zerocopy_rx = run.zerocopy_rx;
                if let Some(dp) = run.datapath {
                    c.datapath = dp;
                }
                if run.trace {
                    c.trace = hostnet::building_blocks::trace::TraceConfig {
                        enabled: true,
                        sample_every: run.trace_sample_every,
                        flow: run.trace_flow,
                        ..hostnet::building_blocks::trace::TraceConfig::DISABLED
                    };
                }
                apply_faults(c, &run);
            });
            exp.warmup = Duration::from_millis(run.warmup_ms);
            exp.measure = Duration::from_millis(run.measure_ms);

            let (report, trace) = match exp.try_run_traced() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("run did not quiesce: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(path) = &run.trace_out {
                use hostnet::building_blocks::trace::export;
                let body = if run.trace_chrome {
                    export::to_chrome(&trace)
                } else {
                    export::to_jsonl(&trace)
                };
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("--trace-out: cannot write `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "trace: {} events ({} skbs) written to {path}",
                    trace.events(),
                    trace.summary().skbs
                );
            }
            if run.json {
                println!("{}", report.to_json());
            } else {
                print!(
                    "{}",
                    hostnet::building_blocks::metrics::format_series_table(std::slice::from_ref(
                        &report
                    ))
                );
                println!("\nreceiver breakdown:");
                for (cat, _) in report.receiver.breakdown.iter() {
                    println!(
                        "  {:<12} {:>5.1}%",
                        cat.label(),
                        report.receiver.breakdown.fraction(cat) * 100.0
                    );
                }
                if report.rpcs_completed > 0 {
                    println!(
                        "\nrpcs: {} ({:.0}/s)",
                        report.rpcs_completed,
                        report.rpcs_completed as f64 / report.window_secs
                    );
                }
                if report.retransmissions > 0 {
                    println!(
                        "loss: {} wire drops, {} ring drops, {} retransmissions",
                        report.wire_drops, report.ring_drops, report.retransmissions
                    );
                }
                if report.drops.total() > 0 {
                    let mut parts = Vec::new();
                    for (bucket, n) in report.drops.buckets() {
                        if n > 0 {
                            parts.push(format!("{bucket} {n}"));
                        }
                    }
                    println!(
                        "drop taxonomy: {} ({} frames attributed)",
                        parts.join(", "),
                        report.drops.total()
                    );
                }
                let conn_table = hostnet::building_blocks::metrics::format_conn_table(&report);
                if !conn_table.is_empty() {
                    println!("\nconnection lifecycle:");
                    print!("{conn_table}");
                }
                let cap_table = hostnet::building_blocks::metrics::format_capacity_table(&report);
                if !cap_table.is_empty() {
                    println!("\noverload model:");
                    print!("{cap_table}");
                }
                if run.trace {
                    let table = hostnet::building_blocks::metrics::format_stage_table(&report);
                    if table.is_empty() {
                        println!("\ntrace: no stamped skbs (check --trace-flow / sampling)");
                    } else {
                        println!("\nstage residency (tracer):");
                        print!("{table}");
                        println!(
                            "trace: {} events across {} skbs",
                            trace.events(),
                            trace.summary().skbs
                        );
                    }
                }
            }
            ExitCode::SUCCESS
        }
    }
}

/// `hostnet monitor`: run a monitored churn/capacity scenario, printing a
/// live interval line per snapshot (and streaming snapshot JSONL to
/// `--metrics-out`), then the end-of-run summary tables.
///
/// Builds the [`hostnet::building_blocks::stack::World`] directly rather
/// than going through [`Experiment`]: the emit callback is a closure, which
/// an `Experiment` (being `Clone`) cannot carry. Churn scenarios install no
/// flows or apps, so nothing else from the scenario builder is needed.
fn run_monitor(m: cli::MonitorArgs) -> ExitCode {
    use hostnet::building_blocks::{metrics, monitor, stack, trace};
    use std::cell::{Cell, RefCell};
    use std::io::Write as _;
    use std::rc::Rc;

    let warmup_ms = m.warmup_ms.unwrap_or(if m.quick { 5 } else { 20 });
    let duration_ms = m.duration_ms.unwrap_or(if m.quick { 30 } else { 100 });
    let interval_ms = m.interval_ms.unwrap_or(if m.quick { 5 } else { 10 });

    // The sketches ride the lifecycle tracer's sampler — one instrumentation
    // layer, sampled, not a second one.
    let cfg = stack::SimConfig {
        seed: m.seed,
        churn: Some(m.churn),
        monitor: Some(monitor::MonitorConfig {
            interval: Duration::from_millis(interval_ms),
            ..monitor::MonitorConfig::default()
        }),
        trace: trace::TraceConfig {
            enabled: true,
            sample_every: m.trace_sample,
            ..trace::TraceConfig::DISABLED
        },
        ..stack::SimConfig::default()
    };

    let writer: Option<Rc<RefCell<std::io::BufWriter<std::fs::File>>>> = match &m.metrics_out {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(Rc::new(RefCell::new(std::io::BufWriter::new(f)))),
            Err(e) => {
                eprintln!("--metrics-out: cannot create `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let write_failed = Rc::new(Cell::new(false));

    let mut world = stack::World::new(cfg);
    world.set_label(m.label.clone());
    {
        let writer = writer.clone();
        let write_failed = Rc::clone(&write_failed);
        let live = !m.json;
        world.set_monitor_emit(Box::new(move |s| {
            if live {
                println!("{}", s.human_line());
            }
            if let Some(w) = &writer {
                let mut w = w.borrow_mut();
                // Flush per line so the file is a live stream, not a
                // buffered batch that appears at exit.
                if writeln!(w, "{}", s.to_jsonl())
                    .and_then(|()| w.flush())
                    .is_err()
                {
                    write_failed.set(true);
                }
            }
        }));
    }

    let report = match world.try_run(
        Duration::from_millis(warmup_ms),
        Duration::from_millis(duration_ms),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("monitor run did not quiesce: {e}");
            return ExitCode::FAILURE;
        }
    };
    if write_failed.get() {
        eprintln!(
            "--metrics-out: write to `{}` failed",
            m.metrics_out.as_deref().unwrap_or("?")
        );
        return ExitCode::FAILURE;
    }
    if m.json {
        println!("{}", report.to_json());
    } else {
        println!("\nmonitor summary ({}):", m.label);
        print!("{}", metrics::format_monitor_table(&report));
        let conn_table = metrics::format_conn_table(&report);
        if !conn_table.is_empty() {
            println!("\nconnection lifecycle:");
            print!("{conn_table}");
        }
        let cap_table = metrics::format_capacity_table(&report);
        if !cap_table.is_empty() {
            println!("\noverload model:");
            print!("{cap_table}");
        }
    }
    ExitCode::SUCCESS
}

/// Translate the CLI's `--fault-*` flags into the simulation's fault plan.
/// Scheduled faults (flap, spike, ring, pool, stall) share one window
/// starting at `--fault-at-ms`; resource faults target the receiver host.
fn apply_faults(c: &mut hostnet::building_blocks::stack::SimConfig, run: &cli::RunArgs) {
    use hostnet::building_blocks::faults::{
        CoreStall, LatencySpike, LossModel, PhaseSchedule, PoolPressure, RingExhaust,
    };

    let ms = |v: f64| Duration::from_nanos((v * 1e6) as u64);
    let window = |d: f64| PhaseSchedule::once(ms(run.fault_at_ms), ms(d));

    if run.burst_loss > 0.0 {
        c.link.loss = LossModel::bursty(run.burst_loss, run.burst_len);
    }
    if run.flap_ms > 0.0 {
        c.link.flap = Some(window(run.flap_ms));
    }
    if run.spike_ms > 0.0 {
        c.link.latency_spike = Some(LatencySpike {
            window: window(run.spike_ms),
            extra: Duration::from_micros(100),
        });
    }
    if run.ring_ms > 0.0 {
        c.faults.ring_exhaust = Some(RingExhaust {
            window: window(run.ring_ms),
            host: 1,
        });
    }
    if run.pool_ms > 0.0 {
        c.faults.pool_pressure = Some(PoolPressure {
            window: window(run.pool_ms),
            host: 1,
        });
    }
    if run.stall_ms > 0.0 {
        c.faults.core_stall = Some(CoreStall {
            window: window(run.stall_ms),
            host: 1,
            core: 0,
        });
    }
    c.watchdog_horizon = Duration::from_millis(run.watchdog_ms);
    c.max_backlog = run.max_backlog;
}

/// Build, optionally quicken/audit, and run a set of sweep points on the
/// shared pool, failing on the first run that does not quiesce. Reports
/// come back in declared point order for any job count.
fn run_points(
    points: &[hostnet::building_blocks::core_figures::SweepPoint],
    jobs: Option<usize>,
    quick: bool,
    audited: bool,
) -> Result<Vec<hostnet::Report>, String> {
    use hostnet::building_blocks::core_figures as figures;
    figures::set_jobs(jobs.unwrap_or_else(hostnet::building_blocks::par::available_jobs));
    hostnet::building_blocks::par::map_ordered(
        figures::jobs(),
        points,
        |p: &figures::SweepPoint| {
            let mut e = p.build();
            if quick {
                e = e.quick();
            }
            if audited {
                e = e.audited();
            }
            e.try_run().map_err(|err| format!("{}: {err}", p.label))
        },
    )
    .into_iter()
    .collect()
}

/// Run the named paper figures (all when empty) and collect their
/// reports.
fn run_figures(names: &[String]) -> Vec<hostnet::Report> {
    use hostnet::building_blocks::core_figures as figures;
    let want = |n: &str| names.is_empty() || names.iter().any(|x| x == n);
    let mut out = Vec::new();
    if want("fig03") {
        out.extend(figures::fig03_single_flow());
    }
    if want("fig03e") {
        out.extend(figures::fig03e_ring_buffer().into_iter().map(|(_, _, r)| r));
    }
    if want("fig03f") {
        out.extend(figures::fig03f_latency().into_iter().map(|(_, r)| r));
    }
    if want("fig03g") {
        out.extend(
            figures::fig03g_latency_breakdown()
                .into_iter()
                .map(|(_, r)| r),
        );
    }
    if want("fig04") {
        out.extend(figures::fig04_numa());
    }
    if want("fig05") {
        out.extend(figures::fig05_one_to_one().into_iter().map(|(_, _, r)| r));
    }
    if want("fig06") {
        out.extend(figures::fig06_incast().into_iter().map(|(_, _, r)| r));
    }
    if want("fig07") {
        out.extend(figures::fig07_outcast().into_iter().map(|(_, _, r)| r));
    }
    if want("fig08") {
        out.extend(figures::fig08_all_to_all().into_iter().map(|(_, _, r)| r));
    }
    if want("fig09") {
        out.extend(figures::fig09_loss().into_iter().map(|(_, r)| r));
    }
    if want("fig09b") {
        out.extend(figures::fig09b_resilience().into_iter().map(|(_, r)| r));
    }
    if want("fig05c") {
        out.extend(figures::fig05_conn_rate().into_iter().map(|(_, r)| r));
    }
    if want("fig10") {
        out.extend(figures::fig10_short_flows().into_iter().map(|(_, r)| r));
        out.extend(figures::fig10c_rpc_numa());
    }
    if want("fig11") {
        out.extend(figures::fig11_mixed().into_iter().map(|(_, r)| r));
    }
    if want("fig12") {
        out.extend(figures::fig12_dca_iommu());
    }
    if want("fig13") {
        out.extend(
            figures::fig13_congestion_control()
                .into_iter()
                .map(|(_, r)| r),
        );
    }
    if want("figcap") {
        out.extend(figures::fig_capacity().into_iter().map(|(_, r)| r));
    }
    if want("figincast") {
        out.extend(figures::fig_incast().into_iter().map(|(_, r)| r));
    }
    if want("figback") {
        out.extend(figures::fig_backend().into_iter().map(|(_, r)| r));
    }
    out
}

/// Command-line grammar and parsing.
pub mod cli {
    use super::*;

    /// Top-level usage text.
    pub const USAGE: &str = "\
usage:
  hostnet run <scenario> [options]
  hostnet figures [fig03|fig03e|fig03f|fig03g|fig04|fig05|fig05c|fig06|
                   fig07|fig08|fig09|fig09b|fig10|fig11|fig12|fig13|figcap|
                   figincast|figback]...
                  [--csv] [--jobs N|auto]
  hostnet capacity [--csv] [--jobs N|auto] [--quick] [--audited]
  hostnet incast [--csv] [--jobs N|auto] [--quick] [--audited]
  hostnet backend [--csv] [--jobs N|auto] [--quick] [--audited]
  hostnet monitor [options]
  hostnet audit [--runs N] [--seed S] [--out DIR] [--quiet]
  hostnet list
  hostnet help

capacity (fig_capacity: admission policy x concurrent clients at fixed cores):
  --csv              emit CSV instead of tables
  --jobs N|auto      sweep thread-pool size (output identical for any value)
  --quick            short windows (5ms + 8ms) for smoke runs
  --audited          run every point under the invariant auditor

incast (fig_incast: switch-level fan-in through the shared-buffer ToR
        fabric, ECN off vs on at every fan-in degree; same flags as
        `capacity`)

backend (fig_backend: in-kernel vs TCP offload vs kernel-bypass datapaths,
         series table plus per-side cycle-taxonomy tables; same flags as
         `capacity`)

monitor (streaming telemetry: live interval lines + JSONL snapshots,
         quantile sketches fed by the sampled lifecycle tracer):
  --scenario S       capacity | churn                     (default capacity)
  --clients N        capacity clients (400 conn/s each)   (default 250)
  --policy P         capacity admission: drop|queue|shed  (default queue)
  --rate CPS         churn connection arrivals per second (default 100000)
  --rpc-size BYTES   RPC request/response size            (default 4096)
  --rpc-size-dist D  fixed | pareto:<min>:<shape>:<cap>   (default fixed)
  --seed N           RNG seed                             (default 1)
  --warmup-ms N      warmup window                        (default 20)
  --duration-ms N    measured window                      (default 100)
  --interval-ms N    snapshot interval                    (default 10)
  --trace-sample-every N  tracer sampling period feeding the sketches
                          (default 8)
  --metrics-out PATH stream snapshot JSONL to PATH
  --quick            smoke windows (5ms + 30ms, 5ms snapshots)
  --json             emit the final report as JSON (no live lines)

audit (differential config fuzzer, every run under the invariant auditor):
  --runs N           fuzz cases to run                    (default 200)
  --seed S           master seed; case i derives from (S, i)  (default 1)
  --out DIR          directory for minimal-repro files    (default .)
  --quiet            suppress the per-case progress line
  exits non-zero if any case fails; failures are bisected to a minimal
  delta set and written to DIR/audit-repro-s<seed>-r<run>.txt

scenarios: single | numa-remote | one-to-one | incast | outcast |
           all-to-all | rpc | mixed | churn   (see `hostnet list`)

options:
  --flows N          flow count / matrix dimension        (default 8)
  --clients N        RPC clients                          (default 16)
  --size BYTES       RPC request/response size            (default 4096)
  --shorts N         short flows in the mixed scenario    (default 16)
  --remote-server    place the RPC server on a NIC-remote node
  --level L          no-opt | tso-gro | jumbo | arfs      (default arfs)
  --cc ALGO          cubic | bbr | dctcp | reno           (default cubic)
  --loss P           in-network loss probability          (default 0)
  --mtu BYTES        1500..9000                           (default 9000)
  --ring N           NIC Rx descriptors                   (default 512)
  --rcvbuf-kb N      pin the receive buffer (default: Linux auto-tuning)
  --no-dca           disable DDIO
  --iommu            enable the IOMMU
  --zerocopy-tx      MSG_ZEROCOPY sender path (§4)
  --zerocopy-rx      TCP mmap receive path (§4)
  --datapath B       inkernel | toe | bypass datapath backend (§4, default
                     inkernel; toe = on-NIC protocol, bypass = busy-poll)
  --churn-rate CPS   connection arrivals per second       (default 100000)
  --churn-mode M     handshake | rpc | pool               (default handshake)
  --churn-conns N    pool population for --churn-mode pool (default 100000)
  --rpc-size-dist D  per-request size for --churn-mode rpc:
                     fixed | pareto:<min>:<shape>:<cap>   (default fixed)

overload model (churn scenario only; any flag enables it):
  --admission P      accept-path policy: drop | queue | shed  (default drop)
  --accept-queue N   listen/accept queue depth            (default 128)
  --mem-budget-kb N  connection memory budget (0 = unlimited, default 0)
  --idle-timeout-ms T  reap established conns idle longer than T (0 = off)
  --slow-prob P      fraction of clients with heavy-tailed think times
  --seed N           RNG seed                             (default 1)
  --warmup-ms N      warmup window                        (default 20)
  --measure-ms N     measurement window                   (default 30)
  --json             emit the full report as JSON

tracing (any --trace-* flag implies --trace):
  --trace                  trace every skb through the 14 pipeline stages
  --trace-sample-every N   trace every Nth skb                  (default 1)
  --trace-flow F           only trace flow id F
  --trace-out PATH         write the per-skb trace to PATH
  --trace-format F         jsonl | chrome (Perfetto)       (default jsonl)

fault injection (all deterministic; scheduled faults share one window):
  --fault-at-ms T        fault window start in ms             (default 30)
  --fault-burst-loss P   Gilbert-Elliott wire loss, long-run rate P
  --fault-burst-len B    mean loss-burst length in frames     (default 8)
  --fault-flap-ms D      link flap (total outage) for D ms
  --fault-spike-ms D     +100us one-way latency for D ms
  --fault-ring-ms D      receiver Rx rings withhold descriptors for D ms
  --fault-pool-ms D      receiver page-pool allocations fail for D ms
  --fault-stall-ms D     receiver core 0 executes nothing for D ms
  --watchdog-ms N        stall watchdog horizon (0 = off)     (default 5000)
  --max-backlog N        per-core softirq backlog cap (0 = off)
";

    /// A parsed invocation.
    #[derive(Debug)]
    pub enum Command {
        /// `hostnet help`.
        Help,
        /// `hostnet list`.
        List,
        /// `hostnet run …` (boxed: RunArgs dwarfs the other variants).
        Run(Box<RunArgs>),
        /// `hostnet figures [names…] [--csv] [--jobs N]`.
        Figures {
            /// Which figures to run (empty = all).
            names: Vec<String>,
            /// Emit CSV instead of tables.
            csv: bool,
            /// Sweep thread-pool size; `None` = auto (host parallelism).
            /// Output is byte-identical for every value.
            jobs: Option<usize>,
        },
        /// `hostnet capacity [--csv] [--jobs N] [--quick] [--audited]`.
        Capacity(CapacityArgs),
        /// `hostnet incast [--csv] [--jobs N] [--quick] [--audited]` —
        /// the fig_incast fabric fan-in sweep; shares the capacity
        /// sweep's flag grammar.
        Incast(CapacityArgs),
        /// `hostnet backend [--csv] [--jobs N] [--quick] [--audited]` —
        /// the fig_backend datapath comparison; shares the capacity
        /// sweep's flag grammar.
        Backend(CapacityArgs),
        /// `hostnet monitor [options]` (boxed: MonitorArgs carries a full
        /// churn config).
        Monitor(Box<MonitorArgs>),
        /// `hostnet audit [--runs N] [--seed S] [--out DIR] [--quiet]`.
        Audit(hostnet::AuditOptions),
    }

    /// Options of `hostnet monitor` (streaming telemetry over a churn run).
    #[derive(Debug)]
    pub struct MonitorArgs {
        /// Fully built and validated churn workload.
        pub churn: hostnet::building_blocks::conn::ChurnConfig,
        /// Display label for the run.
        pub label: String,
        /// RNG seed.
        pub seed: u64,
        /// Warmup window, ms; `None` = default (20, or 5 with `--quick`).
        pub warmup_ms: Option<u64>,
        /// Measured window, ms; `None` = default (100, or 30 with `--quick`).
        pub duration_ms: Option<u64>,
        /// Snapshot interval, ms; `None` = default (10, or 5 with `--quick`).
        pub interval_ms: Option<u64>,
        /// Lifecycle-tracer sampling period feeding the sketches.
        pub trace_sample: u32,
        /// Stream snapshot JSONL to this path.
        pub metrics_out: Option<String>,
        /// Smoke windows (5ms warmup + 30ms measure, 5ms snapshots).
        pub quick: bool,
        /// Emit the final report as JSON and suppress the live lines.
        pub json: bool,
    }

    /// Options of `hostnet capacity` (the fig_capacity overload sweep).
    #[derive(Debug)]
    pub struct CapacityArgs {
        /// Emit CSV instead of tables.
        pub csv: bool,
        /// Sweep thread-pool size; `None` = auto. Output is byte-identical
        /// for every value.
        pub jobs: Option<usize>,
        /// Short windows (5ms + 8ms) for smoke runs.
        pub quick: bool,
        /// Run every point under the invariant auditor.
        pub audited: bool,
    }

    /// Options of `hostnet run`.
    #[derive(Debug)]
    pub struct RunArgs {
        /// Scenario to execute.
        pub scenario: ScenarioKind,
        /// Optimization level override.
        pub level: Option<OptLevel>,
        /// Congestion control override.
        pub cc: Option<CcAlgo>,
        /// In-network loss probability.
        pub loss: f64,
        /// MTU override.
        pub mtu: Option<u32>,
        /// Rx descriptor override.
        pub ring: Option<u32>,
        /// Pinned receive buffer in KB.
        pub rcvbuf_kb: Option<u64>,
        /// Disable DDIO.
        pub no_dca: bool,
        /// Enable the IOMMU.
        pub iommu: bool,
        /// MSG_ZEROCOPY.
        pub zerocopy_tx: bool,
        /// TCP mmap receive.
        pub zerocopy_rx: bool,
        /// Datapath backend override (in-kernel / TOE / bypass).
        pub datapath: Option<DatapathKind>,
        /// Seed.
        pub seed: u64,
        /// Warmup window (ms).
        pub warmup_ms: u64,
        /// Measurement window (ms).
        pub measure_ms: u64,
        /// Emit JSON.
        pub json: bool,
        /// Start of every scheduled fault window, ms.
        pub fault_at_ms: f64,
        /// Gilbert–Elliott long-run loss rate (0 = none).
        pub burst_loss: f64,
        /// Mean loss-burst length in frames.
        pub burst_len: f64,
        /// Link-flap duration, ms (0 = none).
        pub flap_ms: f64,
        /// Latency-spike duration, ms (0 = none).
        pub spike_ms: f64,
        /// Rx-ring exhaustion duration, ms (0 = none).
        pub ring_ms: f64,
        /// Page-pool failure duration, ms (0 = none).
        pub pool_ms: f64,
        /// Core-stall duration, ms (0 = none).
        pub stall_ms: f64,
        /// Watchdog horizon, ms (0 disables).
        pub watchdog_ms: u64,
        /// Softirq backlog cap in frames (0 disables).
        pub max_backlog: u32,
        /// Enable the per-skb lifecycle tracer.
        pub trace: bool,
        /// Trace every Nth skb (1 = all).
        pub trace_sample_every: u32,
        /// Only trace this flow id.
        pub trace_flow: Option<u64>,
        /// Write the trace to this path.
        pub trace_out: Option<String>,
        /// Export format: JSONL records or Chrome trace_event JSON.
        pub trace_chrome: bool,
    }

    /// Parse a full argument vector.
    pub fn parse(args: &[String]) -> Result<Command, String> {
        let mut it = args.iter();
        match it.next().map(String::as_str) {
            None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
            Some("list") => Ok(Command::List),
            Some("run") => parse_run(&args[1..]).map(|r| Command::Run(Box::new(r))),
            Some("figures") => {
                let mut names = Vec::new();
                let mut csv = false;
                let mut jobs = None;
                let mut it = args[1..].iter();
                while let Some(a) = it.next() {
                    if a == "--csv" {
                        csv = true;
                    } else if a == "--jobs" {
                        let v = it
                            .next()
                            .ok_or_else(|| "--jobs: missing value".to_string())?;
                        jobs = if v == "auto" {
                            None
                        } else {
                            Some(parse_num(v, "--jobs")?)
                        };
                    } else if a.starts_with("--") {
                        return Err(format!("figures: unknown flag `{a}`"));
                    } else {
                        names.push(a.clone());
                    }
                }
                Ok(Command::Figures { names, csv, jobs })
            }
            Some("capacity") => parse_sweep_flags("capacity", &args[1..]).map(Command::Capacity),
            Some("incast") => parse_sweep_flags("incast", &args[1..]).map(Command::Incast),
            Some("backend") => parse_sweep_flags("backend", &args[1..]).map(Command::Backend),
            Some("monitor") => parse_monitor(&args[1..]).map(|m| Command::Monitor(Box::new(m))),
            Some("audit") => {
                let mut opts = hostnet::AuditOptions::new(200, 1);
                opts.progress = true;
                let mut it = args[1..].iter();
                while let Some(a) = it.next() {
                    let mut value = |name: &str| -> Result<&String, String> {
                        it.next().ok_or_else(|| format!("{name}: missing value"))
                    };
                    match a.as_str() {
                        "--runs" => opts.runs = parse_num(value("--runs")?, "--runs")?,
                        "--seed" => opts.seed = parse_num(value("--seed")?, "--seed")?,
                        "--out" => opts.out_dir = Some(std::path::PathBuf::from(value("--out")?)),
                        "--quiet" => opts.progress = false,
                        x => return Err(format!("audit: unknown flag `{x}`")),
                    }
                }
                Ok(Command::Audit(opts))
            }
            Some(other) => Err(format!("unknown command `{other}`")),
        }
    }

    /// Parse the flag set shared by `capacity` and `backend` (both are
    /// point sweeps with identical knobs).
    fn parse_sweep_flags(cmd: &str, args: &[String]) -> Result<CapacityArgs, String> {
        let mut cap = CapacityArgs {
            csv: false,
            jobs: None,
            quick: false,
            audited: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--csv" => cap.csv = true,
                "--quick" => cap.quick = true,
                "--audited" => cap.audited = true,
                "--jobs" => {
                    let v = it
                        .next()
                        .ok_or_else(|| "--jobs: missing value".to_string())?;
                    cap.jobs = if v == "auto" {
                        None
                    } else {
                        Some(parse_num(v, "--jobs")?)
                    };
                }
                x => return Err(format!("{cmd}: unknown flag `{x}`")),
            }
        }
        Ok(cap)
    }

    fn parse_run(args: &[String]) -> Result<RunArgs, String> {
        let scenario_name = args
            .first()
            .ok_or_else(|| "run: missing scenario".to_string())?
            .clone();

        // Defaults, possibly overridden by flags below.
        let mut flows = 8u16;
        let mut clients = 16u16;
        let mut size = 4096u32;
        let mut shorts = 16u16;
        let mut remote_server = false;
        let mut churn_rate = 100_000.0f64;
        let mut churn_mode = String::from("handshake");
        let mut churn_conns = 100_000u32;
        let mut rpc_size_dist: Option<hostnet::building_blocks::conn::RpcSizeDist> = None;
        let mut admission: Option<String> = None;
        let mut accept_queue: Option<u32> = None;
        let mut mem_budget_kb: Option<u64> = None;
        let mut idle_timeout_ms: Option<f64> = None;
        let mut slow_prob: Option<f64> = None;
        // Churn-only flags actually given, so a non-churn scenario can
        // reject them instead of silently ignoring them.
        let mut churn_flags: Vec<&'static str> = Vec::new();

        let mut out = RunArgs {
            scenario: ScenarioKind::Single, // placeholder, set at the end
            level: None,
            cc: None,
            loss: 0.0,
            mtu: None,
            ring: None,
            rcvbuf_kb: None,
            no_dca: false,
            iommu: false,
            zerocopy_tx: false,
            zerocopy_rx: false,
            datapath: None,
            seed: 1,
            warmup_ms: 20,
            measure_ms: 30,
            json: false,
            fault_at_ms: 30.0,
            burst_loss: 0.0,
            burst_len: 8.0,
            flap_ms: 0.0,
            spike_ms: 0.0,
            ring_ms: 0.0,
            pool_ms: 0.0,
            stall_ms: 0.0,
            watchdog_ms: 5000,
            max_backlog: 0,
            trace: false,
            trace_sample_every: 1,
            trace_flow: None,
            trace_out: None,
            trace_chrome: false,
        };

        let mut it = args[1..].iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<&String, String> {
                it.next().ok_or_else(|| format!("{name}: missing value"))
            };
            match flag.as_str() {
                "--flows" => flows = parse_num(value("--flows")?, "--flows")?,
                "--clients" => clients = parse_num(value("--clients")?, "--clients")?,
                "--size" => size = parse_num(value("--size")?, "--size")?,
                "--shorts" => shorts = parse_num(value("--shorts")?, "--shorts")?,
                "--remote-server" => remote_server = true,
                "--churn-rate" => {
                    churn_flags.push("--churn-rate");
                    churn_rate = parse_num(value("--churn-rate")?, "--churn-rate")?;
                    if !churn_rate.is_finite() || churn_rate <= 0.0 {
                        return Err("--churn-rate: must be a positive number".into());
                    }
                }
                "--churn-mode" => {
                    churn_flags.push("--churn-mode");
                    churn_mode = value("--churn-mode")?.clone();
                }
                "--churn-conns" => {
                    churn_flags.push("--churn-conns");
                    churn_conns = parse_num(value("--churn-conns")?, "--churn-conns")?;
                }
                "--rpc-size-dist" => {
                    churn_flags.push("--rpc-size-dist");
                    rpc_size_dist = Some(parse_rpc_size_dist(value("--rpc-size-dist")?)?);
                }
                "--admission" => {
                    churn_flags.push("--admission");
                    admission = Some(value("--admission")?.clone());
                }
                "--accept-queue" => {
                    churn_flags.push("--accept-queue");
                    accept_queue = Some(parse_num(value("--accept-queue")?, "--accept-queue")?);
                }
                "--mem-budget-kb" => {
                    churn_flags.push("--mem-budget-kb");
                    mem_budget_kb = Some(parse_num(value("--mem-budget-kb")?, "--mem-budget-kb")?);
                }
                "--idle-timeout-ms" => {
                    churn_flags.push("--idle-timeout-ms");
                    let ms: f64 = parse_num(value("--idle-timeout-ms")?, "--idle-timeout-ms")?;
                    if !ms.is_finite() || ms < 0.0 {
                        return Err("--idle-timeout-ms: must be a non-negative number".into());
                    }
                    idle_timeout_ms = Some(ms);
                }
                "--slow-prob" => {
                    churn_flags.push("--slow-prob");
                    let p: f64 = parse_num(value("--slow-prob")?, "--slow-prob")?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err("--slow-prob: must be in [0, 1]".into());
                    }
                    slow_prob = Some(p);
                }
                "--level" => {
                    out.level = Some(match value("--level")?.as_str() {
                        "no-opt" => OptLevel::NoOpt,
                        "tso-gro" => OptLevel::TsoGro,
                        "jumbo" => OptLevel::Jumbo,
                        "arfs" => OptLevel::Arfs,
                        x => return Err(format!("--level: unknown level `{x}`")),
                    })
                }
                "--cc" => {
                    out.cc = Some(match value("--cc")?.as_str() {
                        "cubic" => CcAlgo::Cubic,
                        "bbr" => CcAlgo::Bbr,
                        "dctcp" => CcAlgo::Dctcp,
                        "reno" => CcAlgo::Reno,
                        x => return Err(format!("--cc: unknown algorithm `{x}`")),
                    })
                }
                "--loss" => {
                    out.loss = value("--loss")?
                        .parse()
                        .map_err(|_| "--loss: expected a probability".to_string())?;
                    if !(0.0..1.0).contains(&out.loss) {
                        return Err("--loss: must be in [0, 1)".into());
                    }
                }
                "--mtu" => out.mtu = Some(parse_num(value("--mtu")?, "--mtu")?),
                "--ring" => out.ring = Some(parse_num(value("--ring")?, "--ring")?),
                "--rcvbuf-kb" => {
                    out.rcvbuf_kb = Some(parse_num(value("--rcvbuf-kb")?, "--rcvbuf-kb")?)
                }
                "--no-dca" => out.no_dca = true,
                "--iommu" => out.iommu = true,
                "--zerocopy-tx" => out.zerocopy_tx = true,
                "--zerocopy-rx" => out.zerocopy_rx = true,
                "--datapath" => {
                    let v = value("--datapath")?;
                    out.datapath = Some(DatapathKind::parse(v).ok_or_else(|| {
                        format!("--datapath: unknown backend `{v}` (inkernel | toe | bypass)")
                    })?);
                }
                "--fault-at-ms" => {
                    out.fault_at_ms = parse_num(value("--fault-at-ms")?, "--fault-at-ms")?
                }
                "--fault-burst-loss" => {
                    out.burst_loss = parse_num(value("--fault-burst-loss")?, "--fault-burst-loss")?;
                    if !(0.0..1.0).contains(&out.burst_loss) {
                        return Err("--fault-burst-loss: must be in [0, 1)".into());
                    }
                }
                "--fault-burst-len" => {
                    out.burst_len = parse_num(value("--fault-burst-len")?, "--fault-burst-len")?
                }
                "--fault-flap-ms" => {
                    out.flap_ms = parse_num(value("--fault-flap-ms")?, "--fault-flap-ms")?
                }
                "--fault-spike-ms" => {
                    out.spike_ms = parse_num(value("--fault-spike-ms")?, "--fault-spike-ms")?
                }
                "--fault-ring-ms" => {
                    out.ring_ms = parse_num(value("--fault-ring-ms")?, "--fault-ring-ms")?
                }
                "--fault-pool-ms" => {
                    out.pool_ms = parse_num(value("--fault-pool-ms")?, "--fault-pool-ms")?
                }
                "--fault-stall-ms" => {
                    out.stall_ms = parse_num(value("--fault-stall-ms")?, "--fault-stall-ms")?
                }
                "--watchdog-ms" => {
                    out.watchdog_ms = parse_num(value("--watchdog-ms")?, "--watchdog-ms")?
                }
                "--max-backlog" => {
                    out.max_backlog = parse_num(value("--max-backlog")?, "--max-backlog")?
                }
                "--trace" => out.trace = true,
                "--trace-sample-every" => {
                    out.trace = true;
                    out.trace_sample_every =
                        parse_num(value("--trace-sample-every")?, "--trace-sample-every")?;
                    if out.trace_sample_every == 0 {
                        return Err("--trace-sample-every: must be at least 1".into());
                    }
                }
                "--trace-flow" => {
                    out.trace = true;
                    out.trace_flow = Some(parse_num(value("--trace-flow")?, "--trace-flow")?);
                }
                "--trace-out" => {
                    out.trace = true;
                    out.trace_out = Some(value("--trace-out")?.clone());
                }
                "--trace-format" => {
                    out.trace = true;
                    out.trace_chrome = match value("--trace-format")?.as_str() {
                        "jsonl" => false,
                        "chrome" => true,
                        x => {
                            return Err(format!("--trace-format: expected jsonl|chrome, got `{x}`"))
                        }
                    };
                }
                "--seed" => out.seed = parse_num(value("--seed")?, "--seed")?,
                "--warmup-ms" => out.warmup_ms = parse_num(value("--warmup-ms")?, "--warmup-ms")?,
                "--measure-ms" => {
                    out.measure_ms = parse_num(value("--measure-ms")?, "--measure-ms")?
                }
                "--json" => out.json = true,
                x => return Err(format!("unknown flag `{x}`")),
            }
        }

        out.scenario = match scenario_name.as_str() {
            "single" => ScenarioKind::Single,
            "numa-remote" => ScenarioKind::SingleNicRemote,
            "one-to-one" => ScenarioKind::OneToOne { flows },
            "incast" => ScenarioKind::Incast { flows },
            "outcast" => ScenarioKind::Outcast { flows },
            "all-to-all" => ScenarioKind::AllToAll { x: flows },
            "rpc" => ScenarioKind::RpcIncast {
                clients,
                size,
                server: if remote_server {
                    Placement::NicRemote
                } else {
                    Placement::NicLocalFirst
                },
            },
            "mixed" => ScenarioKind::Mixed { shorts, size },
            "churn" => {
                use hostnet::building_blocks::workload;
                let mut churn = match churn_mode.as_str() {
                    "handshake" => workload::churn_open_loop(churn_rate),
                    "rpc" => workload::churn_short_rpc(churn_rate, size),
                    "pool" => workload::churn_pool(churn_conns, churn_rate),
                    x => {
                        return Err(format!(
                            "--churn-mode: expected handshake|rpc|pool, got `{x}`"
                        ))
                    }
                };
                // Sample handshakes into the lifecycle tracer at the same
                // rate as data skbs.
                if out.trace {
                    churn.trace_sample = out.trace_sample_every;
                }
                if let Some(d) = rpc_size_dist {
                    churn.rpc_size_dist = d;
                    // Validate eagerly: the dist is rejected outside rpc mode.
                    churn.validate().map_err(|e| format!("run churn: {e}"))?;
                }
                // Any overload flag switches the overload model on.
                if admission.is_some()
                    || accept_queue.is_some()
                    || mem_budget_kb.is_some()
                    || idle_timeout_ms.is_some()
                    || slow_prob.is_some()
                {
                    use hostnet::building_blocks::conn::AdmissionPolicy;
                    churn.overload.enabled = true;
                    if let Some(p) = &admission {
                        churn.overload.policy = AdmissionPolicy::parse(p).ok_or_else(|| {
                            format!("--admission: expected drop|queue|shed, got `{p}`")
                        })?;
                    }
                    if let Some(n) = accept_queue {
                        churn.overload.accept_queue = n;
                    }
                    if let Some(kb) = mem_budget_kb {
                        churn.overload.mem_budget = kb * 1024;
                    }
                    if let Some(ms) = idle_timeout_ms {
                        churn.overload.idle_timeout = Duration::from_nanos((ms * 1e6) as u64);
                    }
                    if let Some(p) = slow_prob {
                        churn.overload.slow_prob = p;
                    }
                    churn.validate().map_err(|e| format!("run churn: {e}"))?;
                }
                ScenarioKind::Churn { churn }
            }
            x => return Err(format!("unknown scenario `{x}` (see `hostnet list`)")),
        };
        if !matches!(out.scenario, ScenarioKind::Churn { .. }) && !churn_flags.is_empty() {
            return Err(format!(
                "{}: only valid with the churn scenario (got `{scenario_name}`)",
                churn_flags.join(", ")
            ));
        }
        if matches!(out.scenario, ScenarioKind::Churn { .. }) {
            if let Some(dp) = out.datapath {
                if dp != DatapathKind::InKernel {
                    return Err(format!(
                        "--datapath {}: only valid with long-flow scenarios (got `{scenario_name}`): \
                         the TOE and bypass backends do not model connection handshakes, so \
                         churn/overload lifecycle frames would be silently mischarged",
                        dp.label()
                    ));
                }
            }
        }
        for (v, flag) in [
            (out.fault_at_ms, "--fault-at-ms"),
            (out.burst_len, "--fault-burst-len"),
            (out.flap_ms, "--fault-flap-ms"),
            (out.spike_ms, "--fault-spike-ms"),
            (out.ring_ms, "--fault-ring-ms"),
            (out.pool_ms, "--fault-pool-ms"),
            (out.stall_ms, "--fault-stall-ms"),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{flag}: must be a non-negative number"));
            }
        }
        Ok(out)
    }

    fn parse_monitor(args: &[String]) -> Result<MonitorArgs, String> {
        use hostnet::building_blocks::conn::{AdmissionPolicy, RpcSizeDist};
        use hostnet::building_blocks::workload;

        let mut scenario = String::from("capacity");
        let mut clients = 250u32;
        let mut policy = String::from("queue");
        let mut rate = 100_000.0f64;
        let mut rpc_size = 4096u32;
        let mut rpc_size_dist = RpcSizeDist::Fixed;
        // Scenario-specific flags actually given, so the other scenario can
        // reject them instead of silently ignoring them.
        let mut capacity_flags: Vec<&'static str> = Vec::new();
        let mut churn_flags: Vec<&'static str> = Vec::new();

        let mut out = MonitorArgs {
            // Placeholder; rebuilt from the parsed flags below.
            churn: workload::churn_capacity(clients, AdmissionPolicy::Queue),
            label: String::new(),
            seed: 1,
            warmup_ms: None,
            duration_ms: None,
            interval_ms: None,
            trace_sample: 8,
            metrics_out: None,
            quick: false,
            json: false,
        };

        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<&String, String> {
                it.next().ok_or_else(|| format!("{name}: missing value"))
            };
            match flag.as_str() {
                "--scenario" => scenario = value("--scenario")?.clone(),
                "--clients" => {
                    capacity_flags.push("--clients");
                    clients = parse_num(value("--clients")?, "--clients")?;
                }
                "--policy" => {
                    capacity_flags.push("--policy");
                    policy = value("--policy")?.clone();
                }
                "--rate" => {
                    churn_flags.push("--rate");
                    rate = parse_num(value("--rate")?, "--rate")?;
                    if !rate.is_finite() || rate <= 0.0 {
                        return Err("--rate: must be a positive number".into());
                    }
                }
                "--rpc-size" => rpc_size = parse_num(value("--rpc-size")?, "--rpc-size")?,
                "--rpc-size-dist" => {
                    rpc_size_dist = parse_rpc_size_dist(value("--rpc-size-dist")?)?
                }
                "--seed" => out.seed = parse_num(value("--seed")?, "--seed")?,
                "--warmup-ms" => {
                    out.warmup_ms = Some(parse_num(value("--warmup-ms")?, "--warmup-ms")?)
                }
                "--duration-ms" => {
                    out.duration_ms = Some(parse_num(value("--duration-ms")?, "--duration-ms")?)
                }
                "--interval-ms" => {
                    let v: u64 = parse_num(value("--interval-ms")?, "--interval-ms")?;
                    if v == 0 {
                        return Err("--interval-ms: must be at least 1".into());
                    }
                    out.interval_ms = Some(v);
                }
                "--trace-sample-every" => {
                    out.trace_sample =
                        parse_num(value("--trace-sample-every")?, "--trace-sample-every")?;
                    if out.trace_sample == 0 {
                        return Err("--trace-sample-every: must be at least 1".into());
                    }
                }
                "--metrics-out" => out.metrics_out = Some(value("--metrics-out")?.clone()),
                "--quick" => out.quick = true,
                "--json" => out.json = true,
                x => return Err(format!("monitor: unknown flag `{x}`")),
            }
        }

        let mut churn = match scenario.as_str() {
            "capacity" => {
                if !churn_flags.is_empty() {
                    return Err(format!(
                        "{}: only valid with --scenario churn",
                        churn_flags.join(", ")
                    ));
                }
                let p = AdmissionPolicy::parse(&policy)
                    .ok_or_else(|| format!("--policy: expected drop|queue|shed, got `{policy}`"))?;
                let mut c = workload::churn_capacity(clients, p);
                c.rpc_size = rpc_size;
                out.label = format!("monitor/capacity/{clients}x{policy}");
                c
            }
            "churn" => {
                if !capacity_flags.is_empty() {
                    return Err(format!(
                        "{}: only valid with --scenario capacity",
                        capacity_flags.join(", ")
                    ));
                }
                out.label = format!("monitor/churn/{rate:.0}cps");
                workload::churn_short_rpc(rate, rpc_size)
            }
            x => return Err(format!("--scenario: expected capacity|churn, got `{x}`")),
        };
        churn.rpc_size_dist = rpc_size_dist;
        // Sample handshakes into the lifecycle tracer at the same rate as
        // data skbs, so the sketches see the whole pipeline.
        churn.trace_sample = out.trace_sample;
        churn.validate().map_err(|e| format!("monitor: {e}"))?;
        out.churn = churn;
        Ok(out)
    }

    /// Parse `fixed` or `pareto:<min>:<shape>:<cap>` into an [`RpcSizeDist`].
    fn parse_rpc_size_dist(s: &str) -> Result<hostnet::building_blocks::conn::RpcSizeDist, String> {
        use hostnet::building_blocks::conn::RpcSizeDist;
        if s == "fixed" {
            return Ok(RpcSizeDist::Fixed);
        }
        if let Some(rest) = s.strip_prefix("pareto:") {
            let parts: Vec<&str> = rest.split(':').collect();
            if parts.len() == 3 {
                return Ok(RpcSizeDist::Pareto {
                    min: parse_num(parts[0], "--rpc-size-dist: pareto min")?,
                    shape: parse_num(parts[1], "--rpc-size-dist: pareto shape")?,
                    cap: parse_num(parts[2], "--rpc-size-dist: pareto cap")?,
                });
            }
        }
        Err(format!(
            "--rpc-size-dist: expected fixed|pareto:<min>:<shape>:<cap>, got `{s}`"
        ))
    }

    fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
        s.parse()
            .map_err(|_| format!("{flag}: invalid number `{s}`"))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn argv(s: &str) -> Vec<String> {
            s.split_whitespace().map(String::from).collect()
        }

        #[test]
        fn parses_help_and_list() {
            assert!(matches!(parse(&[]).unwrap(), Command::Help));
            assert!(matches!(parse(&argv("help")).unwrap(), Command::Help));
            assert!(matches!(parse(&argv("list")).unwrap(), Command::List));
        }

        #[test]
        fn parses_simple_run() {
            let cmd = parse(&argv("run single --json --seed 9")).unwrap();
            match cmd {
                Command::Run(r) => {
                    assert_eq!(r.scenario, ScenarioKind::Single);
                    assert!(r.json);
                    assert_eq!(r.seed, 9);
                }
                _ => panic!("not a run"),
            }
        }

        #[test]
        fn parses_scenario_parameters() {
            let cmd = parse(&argv("run rpc --clients 4 --size 16384 --remote-server")).unwrap();
            match cmd {
                Command::Run(r) => match r.scenario {
                    ScenarioKind::RpcIncast {
                        clients,
                        size,
                        server,
                    } => {
                        assert_eq!(clients, 4);
                        assert_eq!(size, 16384);
                        assert_eq!(server, Placement::NicRemote);
                    }
                    _ => panic!("wrong scenario"),
                },
                _ => panic!("not a run"),
            }
        }

        #[test]
        fn parses_churn_scenario() {
            use hostnet::building_blocks::conn::ChurnMode;
            let cmd = parse(&argv(
                "run churn --churn-rate 250000 --churn-mode rpc --size 1024",
            ))
            .unwrap();
            match cmd {
                Command::Run(r) => match r.scenario {
                    ScenarioKind::Churn { churn } => {
                        assert_eq!(churn.mode, ChurnMode::ShortRpc);
                        assert!((churn.rate_cps - 250_000.0).abs() < 1e-9);
                        assert_eq!(churn.rpc_size, 1024);
                        assert_eq!(churn.trace_sample, 0, "tracing off by default");
                    }
                    _ => panic!("wrong scenario"),
                },
                _ => panic!("not a run"),
            }

            let cmd = parse(&argv(
                "run churn --churn-mode pool --churn-conns 5000 --trace --trace-sample-every 4",
            ))
            .unwrap();
            match cmd {
                Command::Run(r) => match r.scenario {
                    ScenarioKind::Churn { churn } => {
                        assert_eq!(churn.mode, ChurnMode::Pool { conns: 5000 });
                        assert_eq!(churn.trace_sample, 4, "--trace wires the conn sampler");
                    }
                    _ => panic!("wrong scenario"),
                },
                _ => panic!("not a run"),
            }
        }

        #[test]
        fn rejects_bad_churn_flags() {
            assert!(parse(&argv("run churn --churn-mode nope")).is_err());
            assert!(parse(&argv("run churn --churn-rate 0")).is_err());
            assert!(parse(&argv("run churn --churn-rate -5")).is_err());
        }

        #[test]
        fn parses_overload_flags() {
            use hostnet::building_blocks::conn::AdmissionPolicy;
            let cmd = parse(&argv(
                "run churn --churn-mode rpc --admission shed --accept-queue 64 \
                 --mem-budget-kb 2048 --idle-timeout-ms 8 --slow-prob 0.25",
            ))
            .unwrap();
            match cmd {
                Command::Run(r) => match r.scenario {
                    ScenarioKind::Churn { churn } => {
                        let ov = churn.overload;
                        assert!(ov.enabled, "any overload flag enables the model");
                        assert_eq!(ov.policy, AdmissionPolicy::Shed);
                        assert_eq!(ov.accept_queue, 64);
                        assert_eq!(ov.mem_budget, 2048 * 1024);
                        assert_eq!(ov.idle_timeout, Duration::from_millis(8));
                        assert!((ov.slow_prob - 0.25).abs() < 1e-12);
                    }
                    _ => panic!("wrong scenario"),
                },
                _ => panic!("not a run"),
            }
            // Overload stays off when no flag is given.
            match parse(&argv("run churn")).unwrap() {
                Command::Run(r) => match r.scenario {
                    ScenarioKind::Churn { churn } => assert!(!churn.overload.enabled),
                    _ => panic!("wrong scenario"),
                },
                _ => panic!("not a run"),
            }
        }

        #[test]
        fn rejects_bad_overload_flags() {
            assert!(parse(&argv("run churn --admission fifo")).is_err());
            assert!(parse(&argv("run churn --slow-prob 1.5")).is_err());
            assert!(parse(&argv("run churn --slow-prob -0.1")).is_err());
            assert!(parse(&argv("run churn --idle-timeout-ms -2")).is_err());
            assert!(parse(&argv("run churn --accept-queue banana")).is_err());
            // accept_queue = 0 fails OverloadConfig::validate.
            assert!(parse(&argv("run churn --accept-queue 0")).is_err());
            // The overload model rejects pool mode.
            assert!(parse(&argv("run churn --churn-mode pool --admission drop")).is_err());
        }

        #[test]
        fn rejects_churn_flags_on_other_scenarios() {
            for flags in [
                "--churn-rate 50000",
                "--churn-mode rpc",
                "--churn-conns 100",
                "--admission drop",
                "--accept-queue 64",
                "--mem-budget-kb 1024",
                "--idle-timeout-ms 5",
                "--slow-prob 0.1",
            ] {
                let args = argv(&format!("run single {flags}"));
                let err = parse(&args).unwrap_err();
                assert!(
                    err.contains("only valid with the churn scenario"),
                    "`{flags}` on a non-churn scenario must error, got: {err}"
                );
            }
            // ...but the same flags are accepted by the churn scenario.
            assert!(parse(&argv("run churn --churn-rate 50000 --admission drop")).is_ok());
        }

        #[test]
        fn parses_rpc_size_dist_on_churn_runs() {
            use hostnet::building_blocks::conn::RpcSizeDist;
            let cmd = parse(&argv(
                "run churn --churn-mode rpc --rpc-size-dist pareto:512:1.2:65536",
            ))
            .unwrap();
            match cmd {
                Command::Run(r) => match r.scenario {
                    ScenarioKind::Churn { churn } => {
                        assert_eq!(
                            churn.rpc_size_dist,
                            RpcSizeDist::Pareto {
                                min: 512,
                                shape: 1.2,
                                cap: 65536
                            }
                        );
                    }
                    _ => panic!("wrong scenario"),
                },
                _ => panic!("not a run"),
            }
            // Spelled-out `fixed` is the default and always accepted.
            match parse(&argv("run churn --churn-mode rpc --rpc-size-dist fixed")).unwrap() {
                Command::Run(r) => match r.scenario {
                    ScenarioKind::Churn { churn } => {
                        assert_eq!(churn.rpc_size_dist, RpcSizeDist::Fixed)
                    }
                    _ => panic!("wrong scenario"),
                },
                _ => panic!("not a run"),
            }
        }

        #[test]
        fn rejects_bad_rpc_size_dist() {
            // Malformed spellings.
            assert!(parse(&argv("run churn --churn-mode rpc --rpc-size-dist pareto")).is_err());
            assert!(parse(&argv(
                "run churn --churn-mode rpc --rpc-size-dist pareto:1:2"
            ))
            .is_err());
            assert!(parse(&argv(
                "run churn --churn-mode rpc --rpc-size-dist lognormal"
            ))
            .is_err());
            // Valid spelling, invalid values (caught by ChurnConfig::validate).
            assert!(parse(&argv(
                "run churn --churn-mode rpc --rpc-size-dist pareto:0:1.2:65536"
            ))
            .is_err());
            assert!(
                parse(&argv(
                    "run churn --churn-mode rpc --rpc-size-dist pareto:512:1.2:16"
                ))
                .is_err(),
                "cap below min"
            );
            // Non-rpc churn modes reject a non-fixed dist.
            assert!(parse(&argv(
                "run churn --churn-mode handshake --rpc-size-dist pareto:512:1.2:65536"
            ))
            .is_err());
            // Non-churn scenarios reject the flag outright.
            assert!(parse(&argv("run single --rpc-size-dist fixed"))
                .unwrap_err()
                .contains("only valid with the churn scenario"));
        }

        #[test]
        fn parses_monitor_command() {
            use hostnet::building_blocks::conn::{AdmissionPolicy, ChurnMode, RpcSizeDist};
            match parse(&argv("monitor")).unwrap() {
                Command::Monitor(m) => {
                    assert_eq!(m.churn.mode, ChurnMode::ShortRpc);
                    assert!(m.churn.overload.enabled, "capacity probe by default");
                    assert_eq!(m.churn.overload.policy, AdmissionPolicy::Queue);
                    assert_eq!(m.churn.rpc_size_dist, RpcSizeDist::Fixed);
                    assert_eq!(m.churn.trace_sample, 8, "sketches ride the sampler");
                    assert_eq!(m.seed, 1);
                    assert_eq!(m.warmup_ms, None);
                    assert!(!m.quick && !m.json);
                    assert_eq!(m.metrics_out, None);
                }
                _ => panic!("not monitor"),
            }
            match parse(&argv(
                "monitor --scenario capacity --clients 64 --policy shed --rpc-size 1024 \
                 --rpc-size-dist pareto:256:1.5:32768 --seed 7 --warmup-ms 4 \
                 --duration-ms 40 --interval-ms 2 --trace-sample-every 4 \
                 --metrics-out m.jsonl --quick --json",
            ))
            .unwrap()
            {
                Command::Monitor(m) => {
                    assert_eq!(m.churn.overload.policy, AdmissionPolicy::Shed);
                    assert_eq!(m.churn.rpc_size, 1024);
                    assert_eq!(
                        m.churn.rpc_size_dist,
                        RpcSizeDist::Pareto {
                            min: 256,
                            shape: 1.5,
                            cap: 32768
                        }
                    );
                    assert_eq!(m.churn.trace_sample, 4);
                    assert_eq!(m.seed, 7);
                    assert_eq!(m.warmup_ms, Some(4));
                    assert_eq!(m.duration_ms, Some(40));
                    assert_eq!(m.interval_ms, Some(2));
                    assert_eq!(m.metrics_out.as_deref(), Some("m.jsonl"));
                    assert!(m.quick && m.json);
                    assert!(m.label.contains("64xshed"), "label: {}", m.label);
                }
                _ => panic!("not monitor"),
            }
            // The plain-churn scenario takes a rate instead of clients.
            match parse(&argv("monitor --scenario churn --rate 50000")).unwrap() {
                Command::Monitor(m) => {
                    assert!(!m.churn.overload.enabled);
                    assert!((m.churn.rate_cps - 50_000.0).abs() < 1e-9);
                }
                _ => panic!("not monitor"),
            }
        }

        #[test]
        fn rejects_bad_monitor_flags() {
            assert!(parse(&argv("monitor --scenario nope")).is_err());
            assert!(parse(&argv("monitor --policy fifo")).is_err());
            assert!(parse(&argv("monitor --rate 0")).is_err());
            assert!(parse(&argv("monitor --interval-ms 0")).is_err());
            assert!(parse(&argv("monitor --trace-sample-every 0")).is_err());
            assert!(parse(&argv("monitor --bogus")).is_err());
            assert!(parse(&argv("monitor --metrics-out")).is_err());
            // Scenario-specific flags are rejected on the other scenario.
            assert!(parse(&argv("monitor --scenario churn --clients 8"))
                .unwrap_err()
                .contains("only valid with --scenario capacity"));
            assert!(parse(&argv("monitor --scenario capacity --rate 1000"))
                .unwrap_err()
                .contains("only valid with --scenario churn"));
        }

        #[test]
        fn parses_capacity_command() {
            match parse(&argv("capacity --csv --jobs 4 --quick --audited")).unwrap() {
                Command::Capacity(c) => {
                    assert!(c.csv && c.quick && c.audited);
                    assert_eq!(c.jobs, Some(4));
                }
                _ => panic!("not capacity"),
            }
            match parse(&argv("capacity")).unwrap() {
                Command::Capacity(c) => {
                    assert!(!c.csv && !c.quick && !c.audited);
                    assert_eq!(c.jobs, None);
                }
                _ => panic!("not capacity"),
            }
            match parse(&argv("capacity --jobs auto")).unwrap() {
                Command::Capacity(c) => assert_eq!(c.jobs, None),
                _ => panic!("not capacity"),
            }
            assert!(parse(&argv("capacity --bogus")).is_err());
            assert!(parse(&argv("capacity --jobs")).is_err());
        }

        #[test]
        fn parses_incast_command() {
            match parse(&argv("incast --quick --audited --jobs 2")).unwrap() {
                Command::Incast(c) => {
                    assert!(c.quick && c.audited && !c.csv);
                    assert_eq!(c.jobs, Some(2));
                }
                _ => panic!("not incast"),
            }
            assert!(parse(&argv("incast --bogus"))
                .unwrap_err()
                .contains("incast"));
        }

        #[test]
        fn rejects_offload_datapaths_with_churn() {
            for dp in ["toe", "dpdk"] {
                let err = parse(&argv(&format!("run churn --datapath {dp}"))).unwrap_err();
                assert!(
                    err.contains("only valid with long-flow scenarios"),
                    "got: {err}"
                );
            }
            // The in-kernel backend is the one churn models; it stays legal,
            // as do offload backends on long-flow scenarios.
            assert!(parse(&argv("run churn --datapath inkernel")).is_ok());
            assert!(parse(&argv("run single --datapath toe")).is_ok());
        }

        #[test]
        fn parses_backend_command() {
            match parse(&argv("backend --quick --audited --jobs 2")).unwrap() {
                Command::Backend(b) => {
                    assert!(b.quick && b.audited && !b.csv);
                    assert_eq!(b.jobs, Some(2));
                }
                _ => panic!("not backend"),
            }
            assert!(parse(&argv("backend --bogus"))
                .unwrap_err()
                .contains("backend"));
        }

        #[test]
        fn parses_datapath_flag() {
            for (arg, kind) in [
                ("inkernel", DatapathKind::InKernel),
                ("toe", DatapathKind::ToeOffload),
                ("dpdk", DatapathKind::UserBypass),
            ] {
                match parse(&argv(&format!("run single --datapath {arg}"))).unwrap() {
                    Command::Run(r) => assert_eq!(r.datapath, Some(kind)),
                    _ => panic!("not a run"),
                }
            }
            match parse(&argv("run single")).unwrap() {
                Command::Run(r) => assert_eq!(r.datapath, None),
                _ => panic!("not a run"),
            }
            assert!(parse(&argv("run single --datapath quic")).is_err());
        }

        #[test]
        fn parses_stack_flags() {
            let cmd = parse(&argv(
                "run single --level jumbo --cc bbr --loss 0.0015 --mtu 1500 \
                 --ring 2048 --rcvbuf-kb 3200 --no-dca --iommu --zerocopy-tx --zerocopy-rx",
            ))
            .unwrap();
            match cmd {
                Command::Run(r) => {
                    assert_eq!(r.level, Some(OptLevel::Jumbo));
                    assert!(matches!(r.cc, Some(CcAlgo::Bbr)));
                    assert!((r.loss - 0.0015).abs() < 1e-12);
                    assert_eq!(r.mtu, Some(1500));
                    assert_eq!(r.ring, Some(2048));
                    assert_eq!(r.rcvbuf_kb, Some(3200));
                    assert!(r.no_dca && r.iommu && r.zerocopy_tx && r.zerocopy_rx);
                }
                _ => panic!("not a run"),
            }
        }

        #[test]
        fn parses_fault_flags() {
            let cmd = parse(&argv(
                "run single --fault-burst-loss 0.02 --fault-burst-len 16 \
                 --fault-at-ms 22.5 --fault-flap-ms 1.5 --fault-ring-ms 2 \
                 --fault-pool-ms 3 --fault-stall-ms 4 --fault-spike-ms 0.5 \
                 --watchdog-ms 800 --max-backlog 4096",
            ))
            .unwrap();
            match cmd {
                Command::Run(r) => {
                    assert!((r.burst_loss - 0.02).abs() < 1e-12);
                    assert!((r.burst_len - 16.0).abs() < 1e-12);
                    assert!((r.fault_at_ms - 22.5).abs() < 1e-12);
                    assert!((r.flap_ms - 1.5).abs() < 1e-12);
                    assert!((r.ring_ms - 2.0).abs() < 1e-12);
                    assert!((r.pool_ms - 3.0).abs() < 1e-12);
                    assert!((r.stall_ms - 4.0).abs() < 1e-12);
                    assert!((r.spike_ms - 0.5).abs() < 1e-12);
                    assert_eq!(r.watchdog_ms, 800);
                    assert_eq!(r.max_backlog, 4096);
                }
                _ => panic!("not a run"),
            }
        }

        #[test]
        fn fault_defaults_are_quiet() {
            match parse(&argv("run single")).unwrap() {
                Command::Run(r) => {
                    assert_eq!(r.burst_loss, 0.0);
                    assert_eq!(r.flap_ms, 0.0);
                    assert_eq!(r.ring_ms, 0.0);
                    assert_eq!(r.watchdog_ms, 5000);
                    assert_eq!(r.max_backlog, 0);
                }
                _ => panic!("not a run"),
            }
        }

        #[test]
        fn parses_trace_flags() {
            let cmd = parse(&argv(
                "run single --trace-sample-every 8 --trace-flow 0 \
                 --trace-out t.json --trace-format chrome",
            ))
            .unwrap();
            match cmd {
                Command::Run(r) => {
                    assert!(r.trace, "--trace-* flags imply --trace");
                    assert_eq!(r.trace_sample_every, 8);
                    assert_eq!(r.trace_flow, Some(0));
                    assert_eq!(r.trace_out.as_deref(), Some("t.json"));
                    assert!(r.trace_chrome);
                }
                _ => panic!("not a run"),
            }
            match parse(&argv("run single --trace")).unwrap() {
                Command::Run(r) => {
                    assert!(r.trace && !r.trace_chrome);
                    assert_eq!(r.trace_sample_every, 1);
                    assert_eq!(r.trace_out, None);
                }
                _ => panic!("not a run"),
            }
        }

        #[test]
        fn rejects_bad_input() {
            assert!(parse(&argv("run single --fault-burst-loss 1.5")).is_err());
            assert!(parse(&argv("run single --fault-flap-ms")).is_err());
            assert!(parse(&argv("run single --fault-flap-ms -1")).is_err());
            assert!(parse(&argv("run single --fault-at-ms NaN")).is_err());
            assert!(parse(&argv("frobnicate")).is_err());
            assert!(parse(&argv("run nosuch")).is_err());
            assert!(parse(&argv("run single --level warp9")).is_err());
            assert!(parse(&argv("run single --loss 1.5")).is_err());
            assert!(parse(&argv("run single --flows")).is_err());
            assert!(parse(&argv("run single --mtu banana")).is_err());
            assert!(parse(&argv("run single --trace-sample-every 0")).is_err());
            assert!(parse(&argv("run single --trace-format xml")).is_err());
        }

        #[test]
        fn parses_figures_command() {
            match parse(&argv("figures fig06 fig12 --csv")).unwrap() {
                Command::Figures { names, csv, jobs } => {
                    assert_eq!(names, vec!["fig06", "fig12"]);
                    assert!(csv);
                    assert_eq!(jobs, None);
                }
                _ => panic!("not figures"),
            }
            match parse(&argv("figures")).unwrap() {
                Command::Figures { names, csv, jobs } => {
                    assert!(names.is_empty());
                    assert!(!csv);
                    assert_eq!(jobs, None);
                }
                _ => panic!("not figures"),
            }
            assert!(parse(&argv("figures --bogus")).is_err());
        }

        #[test]
        fn parses_figures_jobs() {
            match parse(&argv("figures fig13 --jobs 4")).unwrap() {
                Command::Figures { jobs, .. } => assert_eq!(jobs, Some(4)),
                _ => panic!("not figures"),
            }
            match parse(&argv("figures --jobs auto")).unwrap() {
                Command::Figures { jobs, .. } => assert_eq!(jobs, None),
                _ => panic!("not figures"),
            }
            assert!(parse(&argv("figures --jobs")).is_err());
            assert!(parse(&argv("figures --jobs banana")).is_err());
        }

        #[test]
        fn parses_audit_command() {
            match parse(&argv("audit --runs 25 --seed 7 --out repros --quiet")).unwrap() {
                Command::Audit(o) => {
                    assert_eq!(o.runs, 25);
                    assert_eq!(o.seed, 7);
                    assert_eq!(o.out_dir.as_deref(), Some(std::path::Path::new("repros")));
                    assert!(!o.progress);
                }
                _ => panic!("not audit"),
            }
            match parse(&argv("audit")).unwrap() {
                Command::Audit(o) => {
                    assert_eq!(o.runs, 200);
                    assert_eq!(o.seed, 1);
                    assert!(o.progress);
                }
                _ => panic!("not audit"),
            }
            assert!(parse(&argv("audit --runs")).is_err());
            assert!(parse(&argv("audit --bogus")).is_err());
        }

        #[test]
        fn all_to_all_uses_flows_as_dimension() {
            let cmd = parse(&argv("run all-to-all --flows 4")).unwrap();
            match cmd {
                Command::Run(r) => assert_eq!(r.scenario, ScenarioKind::AllToAll { x: 4 }),
                _ => panic!("not a run"),
            }
        }
    }
}
