//! Perf-trajectory harness for the simulation engine and sweep runner.
//!
//! A plain `main()` bench (`harness = false`) so it runs fully offline —
//! criterion lives on crates.io, which the build environment cannot
//! reach. Measures the quantities the hot-path work targets:
//!
//! * **event-queue ops/sec** — schedule/cancel/pop churn on
//!   [`hns_sim::EventQueue`] alone (the generation-stamped slot path);
//! * **engine events/sec** — a full single-flow run, wall-clock divided
//!   into [`World::events_processed`];
//! * **allocs/skb** — heap allocations per delivered skb during that
//!   run, counted by a wrapping global allocator (the frag-pool payoff);
//! * **sweep wall-clock** — the fig. 3e 24-point grid at `--jobs 1`
//!   vs `--jobs 4` through the same `run_sweep_with` path the CLI uses.
//!
//! Results are appended to a `BENCH_<n>.json` trajectory file at the
//! repo root (n fixed per PR) so successive PRs have a recorded
//! baseline. `-- --test` runs a seconds-scale smoke version and writes
//! nothing: CI uses it to keep the bench compiling and the parallel
//! path exercised.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use hns_core::figures;
use hns_sim::{Duration, EventQueue, SimTime};
use hns_stack::{SimConfig, World};
use hns_workload::Placement;

/// Counts every heap allocation (alloc + realloc) made by the process.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Event-queue churn: keep ~1k events pending, cancel every 8th, pop one
/// per schedule. Returns operations per second (schedule+pop pairs).
fn bench_event_queue(target_pops: u64) -> f64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut tokens: VecDeque<hns_sim::event::EventToken> = VecDeque::new();
    for i in 0..1024u64 {
        tokens.push_back(q.schedule(SimTime::from_nanos(1 + i), i));
    }
    let t0 = Instant::now();
    let mut popped = 0u64;
    let mut i = 1024u64;
    while popped < target_pops {
        if i.is_multiple_of(8) {
            if let Some(t) = tokens.pop_front() {
                q.cancel(t);
            }
        }
        // Schedule ahead of `now` so the queue depth stays steady.
        let at = SimTime::from_nanos(q.now().as_nanos() + 1 + (i % 911));
        tokens.push_back(q.schedule(at, i));
        if tokens.len() > 2048 {
            tokens.pop_front();
        }
        if q.pop().is_some() {
            popped += 1;
        }
        i += 1;
    }
    popped as f64 / t0.elapsed().as_secs_f64()
}

/// A full single-flow run; returns (events/sec, allocs/skb).
fn bench_engine(warmup_ms: u64, measure_ms: u64) -> (f64, f64) {
    let cfg = SimConfig::default();
    let mut world = World::new(cfg);
    hns_workload::single_flow(&cfg.topology, Placement::NicLocalFirst).install(&mut world);
    let a0 = allocs_now();
    let t0 = Instant::now();
    let report = world
        .try_run(
            Duration::from_millis(warmup_ms),
            Duration::from_millis(measure_ms),
        )
        .expect("single-flow bench run quiesces");
    let wall = t0.elapsed().as_secs_f64();
    let allocs = (allocs_now() - a0) as f64;
    let events_per_sec = world.events_processed() as f64 / wall;
    // Delivered skbs ≈ delivered bytes / mean skb size (the report's own
    // aggregate); warmup skbs make this a mild overestimate of allocs/skb.
    let skbs = if report.avg_skb_bytes > 0.0 {
        report.delivered_bytes as f64 / report.avg_skb_bytes
    } else {
        1.0
    };
    (events_per_sec, allocs / skbs.max(1.0))
}

/// Wall-clock one full sweep of `points` at a given job count.
fn bench_sweep(jobs: usize, points: &[figures::SweepPoint]) -> f64 {
    let t0 = Instant::now();
    let reports = figures::run_sweep_with(jobs, points);
    assert_eq!(reports.len(), points.len());
    t0.elapsed().as_secs_f64()
}

fn main() {
    // Cargo passes bench filters and flags like `--bench`; the only one
    // we honor is `--test` (smoke mode), everything else is ignored.
    let smoke = std::env::args().any(|a| a == "--test");

    let host_cpus = hns_par::available_jobs();
    println!("engine_microbench (smoke={smoke}, host_cpus={host_cpus})");

    let queue_pops = if smoke { 200_000 } else { 2_000_000 };
    let queue_ops_per_sec = bench_event_queue(queue_pops);
    println!("  event-queue churn: {queue_ops_per_sec:.0} pops/sec ({queue_pops} pops)");

    let (warmup_ms, measure_ms) = if smoke { (5, 8) } else { (20, 30) };
    let (events_per_sec, allocs_per_skb) = bench_engine(warmup_ms, measure_ms);
    println!(
        "  engine single-flow: {events_per_sec:.0} events/sec, {allocs_per_skb:.2} allocs/skb"
    );

    // Smoke mode keeps the sweep tiny (fig. 13's 3 points, jobs 2) but
    // still drives the parallel path; the real run times the fig. 3e
    // 24-point grid at jobs 1 vs 4.
    let (points, par_jobs) = if smoke {
        (figures::fig13_points(), 2)
    } else {
        (figures::fig03e_points(), 4)
    };
    let seq_secs = bench_sweep(1, &points);
    let par_secs = bench_sweep(par_jobs, &points);
    let speedup = seq_secs / par_secs;
    println!(
        "  sweep {}pts: jobs=1 {seq_secs:.3}s, jobs={par_jobs} {par_secs:.3}s ({speedup:.2}x)",
        points.len()
    );

    if smoke {
        println!("  smoke mode: not writing BENCH json");
        return;
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_3.json");
    let json = format!(
        "{{\n  \"bench\": \"engine_microbench\",\n  \"pr\": 3,\n  \"host_cpus\": {host_cpus},\n  \
         \"event_queue_pops_per_sec\": {queue_ops_per_sec:.0},\n  \
         \"engine_events_per_sec\": {events_per_sec:.0},\n  \
         \"allocs_per_skb\": {allocs_per_skb:.3},\n  \
         \"sweep\": {{\n    \"figure\": \"fig03e\",\n    \"points\": {},\n    \
         \"jobs1_secs\": {seq_secs:.3},\n    \"jobs{par_jobs}_secs\": {par_secs:.3},\n    \
         \"speedup\": {speedup:.3}\n  }}\n}}\n",
        points.len()
    );
    std::fs::write(path, json).expect("write BENCH_3.json");
    println!("  wrote {path}");
}
