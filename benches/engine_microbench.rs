//! Perf-trajectory harness for the simulation engine and sweep runner.
//!
//! A plain `main()` bench (`harness = false`) so it runs fully offline —
//! criterion lives on crates.io, which the build environment cannot
//! reach. Measures the quantities the hot-path work targets:
//!
//! * **event-queue ops/sec, wheel vs heap** — the same schedule/cancel/pop
//!   churn driven through the timer-wheel [`hns_sim::EventQueue`] and the
//!   reference [`hns_sim::HeapEventQueue`], so the wheel's speedup is
//!   measured on the workload shape every `BENCH_<n>.json` has recorded;
//! * **cancellation-heavy and far-future-spill churn** — adversarial
//!   queue workloads that force the wheel's dead-entry discard, cascade,
//!   spill, and re-anchor paths (smoke mode runs them too, so CI covers
//!   those paths, not just the happy path);
//! * **engine events/sec** — a full single-flow run, wall-clock divided
//!   into [`World::events_processed`];
//! * **allocs/skb and peak bytes/skb** — heap allocations and peak live
//!   bytes (above the pre-run baseline) per delivered skb during that
//!   run, counted by a wrapping global allocator, so neither allocation
//!   count nor resident footprint (e.g. the wheel's bucket arrays) can
//!   silently regress;
//! * **sweep wall-clock** — the fig. 3e 24-point grid at `--jobs 1`
//!   vs `--jobs 4` through the same `run_sweep_with` path the CLI uses.
//!
//! Results are appended to a `BENCH_<n>.json` trajectory file at the
//! repo root (n fixed per PR) so successive PRs have a recorded
//! baseline. `-- --test` runs a seconds-scale smoke version, asserts the
//! wheel is at least as fast as the heap, and writes nothing: CI uses it
//! to keep the bench compiling and every queue path exercised.
//! `-- --test --wheel-vs-heap` runs only the queue comparison.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

use hns_core::figures;
use hns_sim::event::EventToken;
use hns_sim::{Duration, EventQueue, HeapEventQueue, SimTime};
use hns_stack::{SimConfig, World};
use hns_workload::Placement;

/// Counts every heap allocation (alloc + realloc) made by the process and
/// tracks live bytes so per-phase peak footprint can be measured.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Bytes currently allocated. Signed: frees of pre-main allocations may
/// transiently drive the counter below the snapshot baseline.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
/// High-water mark of `LIVE_BYTES` since the last `reset_peak`.
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

#[inline]
fn note_live(delta: i64) {
    let now = LIVE_BYTES.fetch_add(delta, Ordering::Relaxed) + delta;
    if delta > 0 {
        PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        note_live(layout.size() as i64);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        note_live(-(layout.size() as i64));
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        note_live(new_size as i64 - layout.size() as i64);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Start a peak-footprint measurement window at the current live level.
fn reset_peak() -> i64 {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live, Ordering::Relaxed);
    live
}

/// Peak bytes above `baseline` since the matching `reset_peak`.
fn peak_above(baseline: i64) -> i64 {
    (PEAK_BYTES.load(Ordering::Relaxed) - baseline).max(0)
}

/// The queue surface the churn workloads need, so the identical loop can
/// drive the timer wheel and the reference heap (monomorphized: no
/// dynamic dispatch on the hot path).
trait QueueApi {
    fn schedule(&mut self, at: SimTime, v: u64) -> EventToken;
    fn cancel(&mut self, t: EventToken);
    fn pop(&mut self) -> Option<(SimTime, u64)>;
    fn now(&self) -> SimTime;
    fn is_empty(&self) -> bool;
}

impl QueueApi for EventQueue<u64> {
    fn schedule(&mut self, at: SimTime, v: u64) -> EventToken {
        EventQueue::schedule(self, at, v)
    }
    fn cancel(&mut self, t: EventToken) {
        EventQueue::cancel(self, t)
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        EventQueue::pop(self)
    }
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }
    fn is_empty(&self) -> bool {
        EventQueue::is_empty(self)
    }
}

impl QueueApi for HeapEventQueue<u64> {
    fn schedule(&mut self, at: SimTime, v: u64) -> EventToken {
        HeapEventQueue::schedule(self, at, v)
    }
    fn cancel(&mut self, t: EventToken) {
        HeapEventQueue::cancel(self, t)
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        HeapEventQueue::pop(self)
    }
    fn now(&self) -> SimTime {
        HeapEventQueue::now(self)
    }
    fn is_empty(&self) -> bool {
        HeapEventQueue::is_empty(self)
    }
}

/// Event-queue churn: keep ~1k events pending, cancel every 8th, pop one
/// per schedule. Returns pops per second. This is the workload shape every
/// BENCH json has recorded (BENCH_3's 13.9M pops/s baseline).
fn bench_queue_churn<Q: QueueApi>(q: &mut Q, target_pops: u64) -> f64 {
    let mut tokens: VecDeque<EventToken> = VecDeque::new();
    for i in 0..1024u64 {
        tokens.push_back(q.schedule(SimTime::from_nanos(1 + i), i));
    }
    let t0 = Instant::now();
    let mut popped = 0u64;
    let mut i = 1024u64;
    while popped < target_pops {
        if i.is_multiple_of(8) {
            if let Some(t) = tokens.pop_front() {
                q.cancel(t);
            }
        }
        // Schedule ahead of `now` so the queue depth stays steady.
        let at = SimTime::from_nanos(q.now().as_nanos() + 1 + (i % 911));
        tokens.push_back(q.schedule(at, i));
        if tokens.len() > 2048 {
            tokens.pop_front();
        }
        if q.pop().is_some() {
            popped += 1;
        }
        i += 1;
    }
    popped as f64 / t0.elapsed().as_secs_f64()
}

/// Cancellation-heavy churn: every iteration schedules two events and
/// kills one immediately, plus an aged (buried) token every other round —
/// most scheduled events die before firing, so the dead-entry discard and
/// eager head-prune paths dominate.
fn bench_cancel_heavy<Q: QueueApi>(q: &mut Q, target_pops: u64) -> f64 {
    let mut tokens: VecDeque<EventToken> = VecDeque::new();
    for i in 0..512u64 {
        tokens.push_back(q.schedule(SimTime::from_nanos(1 + i), i));
    }
    let t0 = Instant::now();
    let mut popped = 0u64;
    let mut i = 512u64;
    while popped < target_pops {
        let keep = q.schedule(SimTime::from_nanos(q.now().as_nanos() + 1 + (i % 911)), i);
        let kill = q.schedule(SimTime::from_nanos(q.now().as_nanos() + 1 + (i % 701)), i);
        q.cancel(kill);
        if i.is_multiple_of(2) {
            if let Some(t) = tokens.pop_front() {
                q.cancel(t); // buried: surfaces (dead) well after cancel
            }
        }
        tokens.push_back(keep);
        if q.pop().is_some() {
            popped += 1;
        }
        i += 1;
    }
    popped as f64 / t0.elapsed().as_secs_f64()
}

/// Far-future-spill churn: near events mixed with timers landing in every
/// wheel level and seconds-ahead spill entries, then a full drain. The
/// drain walks `now` across the level-1/level-2 windows and finally onto
/// the bare spill list, forcing cascade, migration, and re-anchor.
fn bench_far_future_spill<Q: QueueApi>(q: &mut Q, target_pops: u64) -> f64 {
    let t0 = Instant::now();
    let mut popped = 0u64;
    let mut i = 0u64;
    while popped < target_pops {
        let now = q.now().as_nanos();
        let at = if i.is_multiple_of(61) {
            now + 80_000_000_000 + (i % 101) * 1_000_000 // spill (≥34s ahead)
        } else if i.is_multiple_of(31) {
            now + 2_000_000_000 + (i % 97) * 10_000 // level 3
        } else if i.is_multiple_of(13) {
            now + 50_000_000 + (i % 97) * 1_000 // level 2
        } else if i.is_multiple_of(7) {
            now + 200_000 + (i % 89) * 10 // level 1
        } else {
            now + 1 + (i % 911) // level 0 / front
        };
        q.schedule(SimTime::from_nanos(at), i);
        if q.pop().is_some() {
            popped += 1;
        }
        i += 1;
    }
    // Drain everything that is still pending — this is where the far
    // timers actually fire, crossing every cascade boundary on the way.
    while q.pop().is_some() {
        popped += 1;
    }
    assert!(q.is_empty());
    popped as f64 / t0.elapsed().as_secs_f64()
}

/// A full single-flow run; returns (events/sec, allocs/skb, peak bytes/skb).
fn bench_engine(warmup_ms: u64, measure_ms: u64) -> (f64, f64, f64) {
    let cfg = SimConfig::default();
    let mut world = World::new(cfg);
    hns_workload::single_flow(&cfg.topology, Placement::NicLocalFirst).install(&mut world);
    let a0 = allocs_now();
    let live0 = reset_peak();
    let t0 = Instant::now();
    let report = world
        .try_run(
            Duration::from_millis(warmup_ms),
            Duration::from_millis(measure_ms),
        )
        .expect("single-flow bench run quiesces");
    let wall = t0.elapsed().as_secs_f64();
    let allocs = (allocs_now() - a0) as f64;
    let peak_bytes = peak_above(live0) as f64;
    let events_per_sec = world.events_processed() as f64 / wall;
    // Delivered skbs ≈ delivered bytes / mean skb size (the report's own
    // aggregate); warmup skbs make this a mild overestimate of allocs/skb.
    let skbs = if report.avg_skb_bytes > 0.0 {
        report.delivered_bytes as f64 / report.avg_skb_bytes
    } else {
        1.0
    };
    (
        events_per_sec,
        allocs / skbs.max(1.0),
        peak_bytes / skbs.max(1.0),
    )
}

/// Wall-clock one full sweep of `points` at a given job count.
fn bench_sweep(jobs: usize, points: &[figures::SweepPoint]) -> f64 {
    let t0 = Instant::now();
    let reports = figures::run_sweep_with(jobs, points);
    assert_eq!(reports.len(), points.len());
    t0.elapsed().as_secs_f64()
}

fn main() {
    // Cargo passes bench filters and flags like `--bench`; we honor
    // `--test` (smoke mode) and `--wheel-vs-heap` (queue comparison
    // only), everything else is ignored.
    let smoke = std::env::args().any(|a| a == "--test");
    let queue_only = std::env::args().any(|a| a == "--wheel-vs-heap");

    let host_cpus = hns_par::available_jobs();
    println!("engine_microbench (smoke={smoke}, host_cpus={host_cpus})");

    let queue_pops = if smoke { 200_000 } else { 2_000_000 };
    let wheel_pops_per_sec = bench_queue_churn(&mut EventQueue::new(), queue_pops);
    let heap_pops_per_sec = bench_queue_churn(&mut HeapEventQueue::new(), queue_pops);
    let wheel_speedup = wheel_pops_per_sec / heap_pops_per_sec;
    println!(
        "  event-queue churn: wheel {wheel_pops_per_sec:.0} pops/sec, \
         heap {heap_pops_per_sec:.0} pops/sec ({wheel_speedup:.2}x, {queue_pops} pops)"
    );

    let cancel_pops_per_sec = bench_cancel_heavy(&mut EventQueue::new(), queue_pops);
    let heap_cancel_pops_per_sec = bench_cancel_heavy(&mut HeapEventQueue::new(), queue_pops);
    println!(
        "  cancel-heavy churn: wheel {cancel_pops_per_sec:.0} pops/sec, \
         heap {heap_cancel_pops_per_sec:.0} pops/sec"
    );

    let spill_pops_per_sec = bench_far_future_spill(&mut EventQueue::new(), queue_pops);
    let heap_spill_pops_per_sec = bench_far_future_spill(&mut HeapEventQueue::new(), queue_pops);
    println!(
        "  far-future-spill churn: wheel {spill_pops_per_sec:.0} pops/sec, \
         heap {heap_spill_pops_per_sec:.0} pops/sec"
    );

    if smoke {
        // CI gate: the wheel must not lose to the heap on the recorded
        // workload shape.
        assert!(
            wheel_pops_per_sec >= heap_pops_per_sec,
            "timer wheel slower than heap baseline: \
             {wheel_pops_per_sec:.0} < {heap_pops_per_sec:.0} pops/sec"
        );
        println!("  wheel >= heap: ok");
    }
    if queue_only {
        println!("  --wheel-vs-heap: skipping engine/sweep benches");
        return;
    }

    let (warmup_ms, measure_ms) = if smoke { (5, 8) } else { (20, 30) };
    let (events_per_sec, allocs_per_skb, peak_bytes_per_skb) = bench_engine(warmup_ms, measure_ms);
    println!(
        "  engine single-flow: {events_per_sec:.0} events/sec, \
         {allocs_per_skb:.2} allocs/skb, {peak_bytes_per_skb:.0} peak bytes/skb"
    );

    // Smoke mode keeps the sweep tiny (fig. 13's 3 points, jobs 2) but
    // still drives the parallel path; the real run times the fig. 3e
    // 24-point grid at jobs 1 vs 4.
    let (points, par_jobs) = if smoke {
        (figures::fig13_points(), 2)
    } else {
        (figures::fig03e_points(), 4)
    };
    let seq_secs = bench_sweep(1, &points);
    let par_secs = bench_sweep(par_jobs, &points);
    let speedup = seq_secs / par_secs;
    println!(
        "  sweep {}pts: jobs=1 {seq_secs:.3}s, jobs={par_jobs} {par_secs:.3}s ({speedup:.2}x)",
        points.len()
    );

    if smoke {
        println!("  smoke mode: not writing BENCH json");
        return;
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_4.json");
    let json = format!(
        "{{\n  \"bench\": \"engine_microbench\",\n  \"pr\": 8,\n  \"host_cpus\": {host_cpus},\n  \
         \"event_queue_pops_per_sec\": {wheel_pops_per_sec:.0},\n  \
         \"heap_event_queue_pops_per_sec\": {heap_pops_per_sec:.0},\n  \
         \"wheel_speedup\": {wheel_speedup:.3},\n  \
         \"cancel_heavy_pops_per_sec\": {cancel_pops_per_sec:.0},\n  \
         \"far_future_spill_pops_per_sec\": {spill_pops_per_sec:.0},\n  \
         \"engine_events_per_sec\": {events_per_sec:.0},\n  \
         \"allocs_per_skb\": {allocs_per_skb:.3},\n  \
         \"peak_bytes_per_skb\": {peak_bytes_per_skb:.1},\n  \
         \"sweep\": {{\n    \"figure\": \"fig03e\",\n    \"points\": {},\n    \
         \"jobs1_secs\": {seq_secs:.3},\n    \"jobs{par_jobs}_secs\": {par_secs:.3},\n    \
         \"speedup\": {speedup:.3}\n  }}\n}}\n",
        points.len()
    );
    std::fs::write(path, json).expect("write BENCH_4.json");
    println!("  wrote {path}");
}
