//! Build a simulation directly from the building blocks instead of the
//! canned scenarios: a skewed workload with two long flows and a latency-
//! sensitive RPC pair, custom link properties, and DCTCP with ECN marking
//! on the wire.
//!
//! Run with: `cargo run --release --example custom_world`

use hostnet::building_blocks::proto::cc::CcAlgo;
use hostnet::building_blocks::sim::Duration;
use hostnet::building_blocks::stack::{AppSpec, FlowSpec, SimConfig, World};

fn main() {
    let mut cfg = SimConfig::default();
    // A longer link (two switch hops) with shallow-buffer ECN marking,
    // the environment DCTCP is designed for.
    cfg.link.propagation = Duration::from_micros(8);
    cfg.link.ecn_threshold = Some(Duration::from_micros(20));
    cfg.stack.cc = CcAlgo::Dctcp;
    cfg.seed = 42;

    let mut world = World::new(cfg);
    world.set_label("custom: 2 long + 1 rpc, dctcp with ecn");

    // Two bulk flows on their own cores.
    for core in 0..2u16 {
        let f = world.add_flow(FlowSpec::forward(core, core));
        world.add_app(0, core, AppSpec::LongSender { flow: f });
        world.add_app(1, core, AppSpec::LongReceiver { flow: f });
    }
    // A latency-sensitive 2KB RPC pair on its own core (core 2), away
    // from the bulk flows — the scheduling hygiene §4 recommends.
    let req = world.add_flow(FlowSpec::forward(2, 2));
    let resp = world.add_flow(FlowSpec::reverse(2, 2));
    world.add_app(
        0,
        2,
        AppSpec::RpcClient {
            tx: req,
            rx: resp,
            size: 2048,
        },
    );
    world.add_app(
        1,
        2,
        AppSpec::RpcServer {
            conns: vec![(req, resp)],
            size: 2048,
        },
    );

    let report = world.run(Duration::from_millis(20), Duration::from_millis(30));

    println!("{}", report.label);
    println!("  total throughput    {:.2} Gbps", report.total_gbps);
    for flow in 0..2u64 {
        println!(
            "  bulk flow {flow}        {:.2} Gbps",
            report.flow_gbps(flow)
        );
    }
    println!(
        "  rpc round trips     {} ({:.0}/s)",
        report.rpcs_completed / 2,
        report.rpcs_completed as f64 / 2.0 / report.window_secs
    );
    println!(
        "  retransmissions     {} (wire drops: {})",
        report.retransmissions, report.wire_drops
    );
    println!("\nreceiver breakdown:");
    for (cat, _) in report.receiver.breakdown.iter() {
        println!(
            "  {:<12} {:>5.1}%",
            cat.label(),
            report.receiver.breakdown.fraction(cat) * 100.0
        );
    }
}
