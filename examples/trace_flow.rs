//! Trace a flow through loss: run one TCP flow over a lossy link with
//! both tracers enabled and render what each sees.
//!
//! * The **protocol tracer** (`FlowTracer`, `cfg.trace_flows`) records
//!   per-flow TCP events — cwnd samples, retransmissions, timer fires —
//!   the simulator's answer to `tcp_probe`.
//! * The **lifecycle tracer** (`hns-trace`, `cfg.trace`) stamps each skb
//!   at every pipeline stage and reports per-stage residency — the
//!   simulator's answer to a BPF tracepoint suite.
//!
//! Run with: `cargo run --release --example trace_flow`

use hostnet::building_blocks::sim::Duration;
use hostnet::building_blocks::stack::trace::TraceEvent;
use hostnet::building_blocks::stack::{AppSpec, FlowSpec, SimConfig, World};
use hostnet::building_blocks::trace::TraceConfig;

fn main() {
    let mut cfg = SimConfig::default();
    cfg.link.loss = hns_faults::LossModel::uniform(1.5e-3);
    cfg.trace_flows = true;
    // Lifecycle tracer: sample every 4th skb to keep the rings cheap.
    cfg.trace = TraceConfig {
        sample_every: 4,
        ..TraceConfig::enabled()
    };

    let mut world = World::new(cfg);
    let flow = world.add_flow(FlowSpec::forward(0, 0));
    world.add_app(0, 0, AppSpec::LongSender { flow });
    world.add_app(1, 0, AppSpec::LongReceiver { flow });
    let report = world.run(Duration::from_millis(2), Duration::from_millis(28));

    println!(
        "flow 0 over a 0.15%-loss link: {:.2} Gbps, {} retransmissions\n",
        report.total_gbps, report.retransmissions
    );

    // ── Protocol view: the congestion-window timeline ───────────────────
    let trace = &world.flows[flow as usize].trace;
    let max_cwnd = trace
        .cwnd_series()
        .map(|(_, c)| c)
        .max()
        .unwrap_or(1)
        .max(1);

    println!("congestion-window timeline (each row ≈ 1ms, # = cwnd, R = retransmit, T = timer):");
    let mut last_ms = u64::MAX;
    let mut marks: Vec<char> = Vec::new();
    let mut cwnd_now = 0u64;
    for &(t, ev) in trace.events() {
        let ms = t.as_nanos() / 1_000_000;
        if ms != last_ms {
            if last_ms != u64::MAX {
                render_row(last_ms, cwnd_now, max_cwnd, &marks);
            }
            last_ms = ms;
            marks.clear();
        }
        match ev {
            TraceEvent::CwndSample { cwnd, .. } => cwnd_now = cwnd,
            TraceEvent::Retransmit { .. } => marks.push('R'),
            TraceEvent::TimerFired => marks.push('T'),
            TraceEvent::WindowClosed => marks.push('w'),
            TraceEvent::WindowReopened => marks.push('W'),
        }
    }
    if last_ms != u64::MAX {
        render_row(last_ms, cwnd_now, max_cwnd, &marks);
    }

    println!(
        "\n(max cwnd: {:.2} MB; every loss event shows the multiplicative\n\
         decrease followed by CUBIC's recovery — at datacenter RTTs driven\n\
         by the TCP-friendly region, exactly as in the kernel)",
        max_cwnd as f64 / (1024.0 * 1024.0)
    );

    // ── Packet view: where each skb spent its time ──────────────────────
    println!("\nstage residency (lifecycle tracer, every 4th skb):");
    print!(
        "{}",
        hostnet::building_blocks::metrics::format_stage_table(&report)
    );
    let lifecycle = world.trace();
    println!(
        "({} stamps across {} skbs; the sock_queue row is the receive-side\n\
         buffering the cwnd timeline above cannot see)",
        lifecycle.events(),
        lifecycle.summary().skbs
    );
}

fn render_row(ms: u64, cwnd: u64, max: u64, marks: &[char]) {
    let width = (cwnd as f64 / max as f64 * 58.0).round() as usize;
    let tags: String = marks.iter().collect();
    println!("{ms:>4}ms |{:<58}| {}", "#".repeat(width), tags);
}
