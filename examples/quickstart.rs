//! Quickstart: simulate one TCP flow between two hosts over a 100Gbps
//! link with every stack optimization enabled, and print where the CPU
//! cycles went.
//!
//! Run with: `cargo run --release --example quickstart`

use hostnet::{Experiment, ScenarioKind};

fn main() {
    // A single iPerf-style long flow, all optimizations (TSO/GRO, jumbo
    // frames, aRFS), applications on NIC-local cores — the paper's §3.1
    // baseline.
    let report = Experiment::new(ScenarioKind::Single).run();

    println!("single flow, all optimizations:");
    println!("  throughput            {:.2} Gbps", report.total_gbps);
    println!(
        "  throughput-per-core   {:.2} Gbps",
        report.thpt_per_core_gbps
    );
    println!(
        "  sender / receiver CPU {:.2} / {:.2} cores",
        report.sender.cores_used, report.receiver.cores_used
    );
    println!(
        "  receiver DCA miss     {:.1}%",
        report.receiver.cache.miss_rate() * 100.0
    );
    println!(
        "  NAPI→copy latency     avg {:.0}us, p99 {:.0}us",
        report.napi_to_copy.avg_us, report.napi_to_copy.p99_us
    );

    println!("\nreceiver-side CPU cycle breakdown (paper Table 1 taxonomy):");
    for (cat, _) in report.receiver.breakdown.iter() {
        let f = report.receiver.breakdown.fraction(cat);
        let bar = "#".repeat((f * 60.0).round() as usize);
        println!("  {:<12} {:>5.1}% {}", cat.label(), f * 100.0, bar);
    }

    println!(
        "\nThe dominant consumer is {} — the paper's headline finding: at\n\
         100Gbps a single core can no longer keep up, and the bottleneck\n\
         has moved from protocol processing to data copy.",
        report
            .receiver
            .breakdown
            .dominant()
            .map(|c| c.label())
            .unwrap_or("?")
    );
}
