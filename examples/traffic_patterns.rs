//! Compare all five of the paper's traffic patterns (Fig. 2) at the same
//! optimization level and see how host resource sharing changes
//! CPU efficiency — "host resource sharing considered harmful".
//!
//! Run with: `cargo run --release --example traffic_patterns`

use hostnet::{Experiment, ScenarioKind};

fn main() {
    let scenarios = [
        ("single", ScenarioKind::Single),
        ("one-to-one (8)", ScenarioKind::OneToOne { flows: 8 }),
        ("incast (8:1)", ScenarioKind::Incast { flows: 8 }),
        ("outcast (1:8)", ScenarioKind::Outcast { flows: 8 }),
        ("all-to-all (8x8)", ScenarioKind::AllToAll { x: 8 }),
    ];

    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "pattern", "total", "thpt/core", "snd_cores", "rcv_cores", "miss"
    );
    let mut best = ("", f64::MIN);
    let mut worst = ("", f64::MAX);
    for (name, kind) in scenarios {
        let r = Experiment::new(kind).run();
        println!(
            "{:<18} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>7.1}%",
            name,
            r.total_gbps,
            r.thpt_per_core_gbps,
            r.sender.cores_used,
            r.receiver.cores_used,
            r.receiver.cache.miss_rate() * 100.0
        );
        if r.thpt_per_core_gbps > best.1 {
            best = (name, r.thpt_per_core_gbps);
        }
        if r.thpt_per_core_gbps < worst.1 {
            worst = (name, r.thpt_per_core_gbps);
        }
    }

    println!(
        "\nCPU efficiency spread across patterns: {:.0}% ({} {:.1} vs {} {:.1} Gbps/core).",
        (1.0 - worst.1 / best.1) * 100.0,
        worst.0,
        worst.1,
        best.0,
        best.1
    );
    println!(
        "The paper reports up to 66% — flows sharing an L3 cache, a NIC, or\n\
         a core interfere through the memory subsystem even when each has a\n\
         dedicated CPU."
    );
}
