//! Use the simulator as a tuning tool: sweep the TCP receive buffer to
//! find the DCA-aware sweet spot the kernel's auto-tuning misses
//! (the paper's Fig. 3e/3f insight, §4 "rethinking TCP auto-tuning").
//!
//! Run with: `cargo run --release --example buffer_tuning`

use hostnet::building_blocks::stack::config::RcvBufPolicy;
use hostnet::{Experiment, ScenarioKind};

fn main() {
    println!(
        "{:<12} {:>10} {:>8} {:>12} {:>12}",
        "rcvbuf", "thpt/core", "miss", "avg_lat(us)", "p99_lat(us)"
    );

    let mut best = (0u64, 0.0f64);
    for kb in [400u64, 800, 1600, 2400, 3200, 4800, 6400, 9600, 12800] {
        let r = Experiment::new(ScenarioKind::Single)
            .configure(|c| c.stack.rcvbuf = RcvBufPolicy::Fixed(kb * 1024))
            .run();
        println!(
            "{:>9}KB {:>10.2} {:>7.1}% {:>12.1} {:>12.1}",
            kb,
            r.thpt_per_core_gbps,
            r.receiver.cache.miss_rate() * 100.0,
            r.napi_to_copy.avg_us,
            r.napi_to_copy.p99_us
        );
        if r.thpt_per_core_gbps > best.1 {
            best = (kb, r.thpt_per_core_gbps);
        }
    }

    let auto = Experiment::new(ScenarioKind::Single).run();
    println!(
        "{:<12} {:>10.2} {:>7.1}%  (Linux DRS, grows to the 6MB cap)",
        "auto-tuned",
        auto.thpt_per_core_gbps,
        auto.receiver.cache.miss_rate() * 100.0
    );

    println!(
        "\nBest fixed buffer: {}KB at {:.2} Gbps/core — {:.0}% better than\n\
         auto-tuning. The auto-tuner maximizes raw throughput and is blind\n\
         to the ~3MB DDIO slice, so it overshoots the cache-friendly\n\
         operating point exactly as the paper describes.",
        best.0,
        best.1,
        (best.1 / auto.thpt_per_core_gbps - 1.0) * 100.0
    );
}
